/**
 * @file
 * Smell warnings: findings that do not make a plan unsafe but indicate
 * wasted codegen — registers written and never read, loads whose values
 * are dead, accessors no instruction references, and partitions that do
 * no work at all.
 */

#include <set>
#include <vector>

#include "src/verify/checks.hh"

namespace distda::verify
{

using compiler::MicroInst;
using compiler::MicroKind;
using compiler::MicroProgram;
using compiler::noReg;
using compiler::OffloadPlan;
using compiler::Partition;

namespace
{

constexpr const char *passName = "smells";

void
checkPartition(const OffloadPlan &plan, const Partition &part,
               Report &report)
{
    const MicroProgram &prog = part.program;
    const std::string loc = partLoc(plan, part.id);

    if (prog.insts.empty() && part.accessors.empty()) {
        report.add(Severity::Warning, passName, loc,
                   "partition has no instructions and no accessors "
                   "(unreachable work)");
        return;
    }

    // Registers read by some instruction.
    std::vector<bool> read(static_cast<std::size_t>(
                               std::max(prog.numRegs, 0)),
                           false);
    auto mark = [&read](std::uint16_t r) {
        if (r != noReg && r < read.size())
            read[r] = true;
    };
    for (const MicroInst &inst : prog.insts) {
        mark(inst.a);
        mark(inst.b);
        mark(inst.c);
    }

    // Carry registers are read externally: every CarryWrite targets
    // one, and the host reads result carries back via cp_load_rf.
    std::set<std::uint16_t> carry_regs;
    for (const auto &cs : prog.carries)
        carry_regs.insert(cs.reg);

    std::set<std::uint16_t> flagged;
    auto flag_dead = [&](std::uint16_t reg, const std::string &where,
                         const char *what) {
        if (reg == noReg || reg >= read.size())
            return;
        if (read[reg] || carry_regs.count(reg))
            return;
        if (!flagged.insert(reg).second)
            return;
        report.add(Severity::Warning, passName, where,
                   "%s r%u is never read (dead register)", what, reg);
    };

    for (const auto &c : prog.constRegs)
        flag_dead(c.reg, loc, "constant register");
    for (const auto &[param, reg] : prog.paramRegs) {
        (void)param;
        flag_dead(reg, loc, "parameter register");
    }
    for (std::size_t pc = 0; pc < prog.insts.size(); ++pc) {
        const MicroInst &inst = prog.insts[pc];
        if (inst.dst == noReg)
            continue;
        const char *what =
            inst.kind == MicroKind::LoadStream ||
                    inst.kind == MicroKind::LoadIdx
                ? "loaded value"
                : inst.kind == MicroKind::Consume ? "consumed value"
                                                  : "result";
        flag_dead(inst.dst, instLoc(plan, part.id, pc), what);
    }

    // Accessors no instruction addresses.
    std::set<int> used_slots;
    for (const MicroInst &inst : prog.insts) {
        switch (inst.kind) {
          case MicroKind::LoadStream:
          case MicroKind::StoreStream:
          case MicroKind::LoadIdx:
          case MicroKind::StoreIdx:
            used_slots.insert(inst.slot);
            break;
          default:
            break;
        }
    }
    for (std::size_t ai = 0; ai < part.accessors.size(); ++ai) {
        if (!used_slots.count(static_cast<int>(ai))) {
            report.add(Severity::Warning, passName, loc,
                       "accessor %zu (node %d) is referenced by no "
                       "instruction",
                       ai, part.accessors[ai].node);
        }
    }
}

} // namespace

void
checkSmells(const OffloadPlan &plan, const Options &opts, Report &report)
{
    if (!opts.smells)
        return;
    for (const Partition &part : plan.partitions)
        checkPartition(plan, part, report);
}

} // namespace distda::verify
