/**
 * @file
 * Purity/memoizability analysis: classify a kernel invocation by its
 * object read/write footprints. Pure kernels touch no object with a
 * store (results leave through result carries only); Idempotent
 * kernels store only to objects they never load, so re-running them
 * with the same inputs rewrites the same bytes; anything that loads an
 * object it also stores is Stateful (the second run observes the
 * first's writes). A non-Stateful kernel is memoizable unless some
 * observed invocation aliased two object bindings — aliasing collapses
 * distinct footprints into the same bytes, which is exactly what the
 * offload model (and the fuzz-case validator) forbids.
 */

#include <algorithm>

#include "src/verify/analysis.hh"

namespace distda::verify
{

using compiler::AccessDir;
using compiler::Node;
using compiler::NodeKind;
using compiler::OffloadPlan;

void
analyzePurity(const OffloadPlan &plan, const AnalysisOptions &opts,
              FactStore &facts)
{
    PurityFact f;
    for (const Node &n : plan.kernel.nodes) {
        if (n.kind != NodeKind::Access)
            continue;
        auto &list = n.dir == AccessDir::Store ? f.writtenObjects
                                               : f.readObjects;
        list.push_back(n.objId);
    }
    auto dedupe = [](std::vector<int> &v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    dedupe(f.readObjects);
    dedupe(f.writtenObjects);

    if (f.writtenObjects.empty()) {
        f.cls = PurityClass::Pure;
    } else {
        const bool overlap = std::any_of(
            f.writtenObjects.begin(), f.writtenObjects.end(),
            [&](int w) {
                return std::binary_search(f.readObjects.begin(),
                                          f.readObjects.end(), w);
            });
        f.cls = overlap ? PurityClass::Stateful : PurityClass::Idempotent;
    }

    // Without a profile the offload model's no-aliasing contract is
    // assumed (the driver and the fuzz-case validator both reject
    // aliased bindings); an observed aliased binding voids it.
    const bool aliased = opts.profile && opts.profile->aliasedBindings;
    f.memoizable = f.cls != PurityClass::Stateful && !aliased;
    facts.purity = f;
}

} // namespace distda::verify
