#include "src/verify/analysis.hh"

#include <algorithm>
#include <limits>

namespace distda::verify
{

namespace
{

constexpr std::int64_t infNeg = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t infPos = std::numeric_limits<std::int64_t>::max();

std::int64_t
clamp128(__int128 v)
{
    if (v <= static_cast<__int128>(infNeg))
        return infNeg;
    if (v >= static_cast<__int128>(infPos))
        return infPos;
    return static_cast<std::int64_t>(v);
}

/** a + b where infNeg/infPos are absorbing (unbounded stays unbounded). */
std::int64_t
addBound(std::int64_t a, std::int64_t b)
{
    if (a == infNeg || b == infNeg)
        return infNeg;
    if (a == infPos || b == infPos)
        return infPos;
    return clamp128(static_cast<__int128>(a) + b);
}

/**
 * a * b over bounds. Zero absorbs even infinities (an unbounded value
 * times zero is zero); any finite overflow saturates to the matching
 * infinity, which is a sound over-approximation.
 */
std::int64_t
mulBound(std::int64_t a, std::int64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    return clamp128(static_cast<__int128>(a) * b);
}

std::int64_t
negBound(std::int64_t a)
{
    if (a == infNeg)
        return infPos;
    if (a == infPos)
        return infNeg;
    return -a;
}

/** Exact add/mul with overflow detection (for affine coefficients). */
bool
addExact(std::int64_t a, std::int64_t b, std::int64_t &out)
{
    const __int128 s = static_cast<__int128>(a) + b;
    if (s < static_cast<__int128>(infNeg) ||
        s > static_cast<__int128>(infPos))
        return false;
    out = static_cast<std::int64_t>(s);
    return true;
}

bool
mulExact(std::int64_t a, std::int64_t b, std::int64_t &out)
{
    const __int128 p = static_cast<__int128>(a) * b;
    if (p < static_cast<__int128>(infNeg) ||
        p > static_cast<__int128>(infPos))
        return false;
    out = static_cast<std::int64_t>(p);
    return true;
}

bool
sameAffine(const AffineForm &a, const AffineForm &b)
{
    if (a.known != b.known)
        return false;
    if (!a.known)
        return true;
    if (a.base != b.base || a.ivCoeff != b.ivCoeff)
        return false;
    const std::size_t n =
        std::max(a.paramCoeffs.size(), b.paramCoeffs.size());
    for (std::size_t k = 0; k < n; ++k) {
        const std::int64_t ca = k < a.paramCoeffs.size() ? a.paramCoeffs[k] : 0;
        const std::int64_t cb = k < b.paramCoeffs.size() ? b.paramCoeffs[k] : 0;
        if (ca != cb)
            return false;
    }
    return true;
}

} // namespace

Interval
Interval::top()
{
    return Interval{infNeg, infPos};
}

bool
Interval::isTop() const
{
    return lo == infNeg && hi == infPos;
}

bool
Interval::within(std::uint64_t elems) const
{
    if (isBottom())
        return true; // vacuous: no value is ever produced
    if (lo < 0)
        return false;
    if (elems > static_cast<std::uint64_t>(infPos))
        return true;
    return hi < static_cast<std::int64_t>(elems);
}

bool
Interval::disjointFrom(std::uint64_t elems) const
{
    if (isBottom())
        return false;
    if (hi < 0)
        return true;
    if (elems > static_cast<std::uint64_t>(infPos))
        return false;
    return lo >= static_cast<std::int64_t>(elems);
}

Interval
Interval::join(const Interval &o) const
{
    if (isBottom())
        return o;
    if (o.isBottom())
        return *this;
    return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
}

Interval
Interval::widen(const Interval &next) const
{
    if (isBottom())
        return next;
    if (next.isBottom())
        return *this;
    return Interval{next.lo < lo ? infNeg : lo,
                    next.hi > hi ? infPos : hi};
}

Interval
Interval::add(const Interval &o) const
{
    if (isBottom() || o.isBottom())
        return Interval{};
    return Interval{addBound(lo, o.lo), addBound(hi, o.hi)};
}

Interval
Interval::sub(const Interval &o) const
{
    return add(o.neg());
}

Interval
Interval::mul(const Interval &o) const
{
    if (isBottom() || o.isBottom())
        return Interval{};
    const std::int64_t c[4] = {mulBound(lo, o.lo), mulBound(lo, o.hi),
                               mulBound(hi, o.lo), mulBound(hi, o.hi)};
    return Interval{*std::min_element(c, c + 4),
                    *std::max_element(c, c + 4)};
}

Interval
Interval::neg() const
{
    if (isBottom())
        return Interval{};
    return Interval{negBound(hi), negBound(lo)};
}

Interval
Interval::minWith(const Interval &o) const
{
    if (isBottom() || o.isBottom())
        return Interval{};
    return Interval{std::min(lo, o.lo), std::min(hi, o.hi)};
}

Interval
Interval::maxWith(const Interval &o) const
{
    if (isBottom() || o.isBottom())
        return Interval{};
    return Interval{std::max(lo, o.lo), std::max(hi, o.hi)};
}

Interval
Interval::absVal() const
{
    if (isBottom())
        return Interval{};
    if (lo >= 0)
        return *this;
    if (hi <= 0)
        return neg();
    return Interval{0, std::max(negBound(lo), hi)};
}

AffineForm
AffineForm::constant(std::int64_t v)
{
    AffineForm f;
    f.known = true;
    f.base = v;
    return f;
}

AffineForm
AffineForm::iv()
{
    AffineForm f;
    f.known = true;
    f.ivCoeff = 1;
    return f;
}

AffineForm
AffineForm::param(std::size_t k)
{
    AffineForm f;
    f.known = true;
    f.paramCoeffs.assign(k + 1, 0);
    f.paramCoeffs[k] = 1;
    return f;
}

AffineForm
AffineForm::add(const AffineForm &o) const
{
    AffineForm out;
    if (!known || !o.known)
        return out;
    out.known = true;
    if (!addExact(base, o.base, out.base) ||
        !addExact(ivCoeff, o.ivCoeff, out.ivCoeff))
        return AffineForm{};
    const std::size_t n =
        std::max(paramCoeffs.size(), o.paramCoeffs.size());
    out.paramCoeffs.resize(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
        const std::int64_t ca = k < paramCoeffs.size() ? paramCoeffs[k] : 0;
        const std::int64_t cb =
            k < o.paramCoeffs.size() ? o.paramCoeffs[k] : 0;
        if (!addExact(ca, cb, out.paramCoeffs[k]))
            return AffineForm{};
    }
    return out;
}

AffineForm
AffineForm::sub(const AffineForm &o) const
{
    return add(o.scale(-1));
}

AffineForm
AffineForm::scale(std::int64_t c) const
{
    AffineForm out;
    if (!known)
        return out;
    out.known = true;
    if (!mulExact(base, c, out.base) ||
        !mulExact(ivCoeff, c, out.ivCoeff))
        return AffineForm{};
    out.paramCoeffs.resize(paramCoeffs.size(), 0);
    for (std::size_t k = 0; k < paramCoeffs.size(); ++k) {
        if (!mulExact(paramCoeffs[k], c, out.paramCoeffs[k]))
            return AffineForm{};
    }
    return out;
}

AbstractValue
AbstractValue::top()
{
    return AbstractValue{Interval::top(), AffineForm{}};
}

AbstractValue
AbstractValue::exact(std::int64_t v)
{
    return AbstractValue{Interval::exact(v), AffineForm::constant(v)};
}

AbstractValue
AbstractValue::join(const AbstractValue &o) const
{
    AbstractValue out;
    out.itv = itv.join(o.itv);
    // Joining an affine form with bottom keeps the form; any other
    // disagreement loses the relation (the interval survives).
    if (itv.isBottom())
        out.affine = o.affine;
    else if (o.itv.isBottom())
        out.affine = affine;
    else if (sameAffine(affine, o.affine))
        out.affine = affine;
    return out;
}

bool
AbstractValue::operator==(const AbstractValue &o) const
{
    return itv == o.itv && sameAffine(affine, o.affine);
}

void
InvocationProfile::record(const compiler::Kernel &kernel,
                          const std::vector<std::int64_t> &param_ints,
                          const std::vector<std::uint64_t> &object_elems,
                          bool aliased)
{
    ++invocations;
    aliasedBindings = aliasedBindings || aliased;

    std::int64_t trip_now = kernel.loop.staticExtent;
    const int tp = kernel.loop.extentParam;
    if (tp >= 0 && static_cast<std::size_t>(tp) < param_ints.size())
        trip_now = param_ints[static_cast<std::size_t>(tp)];
    trip = trip.join(Interval::exact(trip_now));

    if (params.size() < param_ints.size())
        params.resize(param_ints.size()); // new slots start at bottom
    for (std::size_t k = 0; k < param_ints.size(); ++k)
        params[k] = params[k].join(Interval::exact(param_ints[k]));

    for (std::size_t i = 0; i < object_elems.size(); ++i) {
        if (i >= objectElems.size())
            objectElems.push_back(object_elems[i]);
        else
            objectElems[i] = std::min(objectElems[i], object_elems[i]);
    }

    if (trip_now < 1)
        return; // zero-trip invocations touch no elements
    for (const compiler::Node &n : kernel.nodes) {
        if (n.kind != compiler::NodeKind::Access ||
            n.pattern != compiler::PatternKind::Affine)
            continue;
        const Interval r = affineRangeExact(n.affine, param_ints, trip_now);
        auto [it, fresh] = accessRanges.try_emplace(n.id, r);
        if (!fresh)
            it->second = it->second.join(r);
    }
}

int
AnalysisOptions::capacityOf(int channel) const
{
    if (channel >= 0 &&
        static_cast<std::size_t>(channel) < channelCapacities.size() &&
        channelCapacities[static_cast<std::size_t>(channel)] > 0)
        return channelCapacities[static_cast<std::size_t>(channel)];
    return channelCapacity;
}

const std::vector<AnalysisPass> &
analyses()
{
    static const std::vector<AnalysisPass> all = {
        {"bounds", analyzeBounds},
        {"channels", analyzeChannels},
        {"purity", analyzePurity},
        {"interference", analyzeInterference},
    };
    return all;
}

FactStore
analyzePlan(const compiler::OffloadPlan &plan, const AnalysisOptions &opts)
{
    FactStore facts;
    facts.kernel = plan.kernel.name;
    for (const AnalysisPass &a : analyses())
        a.run(plan, opts, facts);
    return facts;
}

bool
FixpointCell::joinFrom(const AbstractValue &v, bool widen)
{
    AbstractValue next = _value.join(v);
    if (widen)
        next.itv = _value.itv.widen(next.itv);
    if (next == _value)
        return false;
    _value = next;
    return true;
}

Interval
affineRangeExact(const compiler::AffinePattern &pattern,
                 const std::vector<std::int64_t> &param_ints,
                 std::int64_t trip)
{
    std::int64_t base = pattern.constBase;
    for (std::size_t k = 0; k < pattern.paramCoeffs.size(); ++k) {
        if (k >= param_ints.size())
            continue;
        base = addBound(base, mulBound(pattern.paramCoeffs[k],
                                       param_ints[k]));
    }
    const std::int64_t last =
        addBound(base, mulBound(pattern.ivCoeff, trip - 1));
    return Interval{std::min(base, last), std::max(base, last)};
}

Interval
affineRangeAbstract(const compiler::AffinePattern &pattern,
                    const std::vector<Interval> &params,
                    const Interval &trip)
{
    Interval out = Interval::exact(pattern.constBase);
    for (std::size_t k = 0; k < pattern.paramCoeffs.size(); ++k) {
        const std::int64_t c = pattern.paramCoeffs[k];
        if (c == 0)
            continue;
        Interval p = k < params.size() ? params[k] : Interval::top();
        if (p.isBottom())
            p = Interval::top();
        out = out.add(p.mul(Interval::exact(c)));
    }
    if (pattern.ivCoeff != 0) {
        // i ranges over [0, maxTrip - 1]; unknown trip means i >= 0.
        Interval iv;
        if (trip.isBottom())
            iv = Interval{0, infPos};
        else if (trip.hi < 1)
            return Interval{}; // never iterates: no element touched
        else
            iv = Interval{0, addBound(trip.hi, -1)};
        out = out.add(iv.mul(Interval::exact(pattern.ivCoeff)));
    }
    return out;
}

} // namespace distda::verify
