/**
 * @file
 * The verification pass manager: runs every registered pass over a
 * compiled plan, and the enforcement shim used at the compiler and
 * driver integration points.
 */

#include "src/verify/verify.hh"

#include "src/sim/logging.hh"
#include "src/verify/checks.hh"

namespace distda::verify
{

using compiler::Kernel;
using compiler::Node;
using compiler::NodeKind;
using compiler::OffloadPlan;
using compiler::OpCode;

Options
optionsFor(const compiler::CompileOptions &opts)
{
    Options v;
    v.channelCapacity = opts.channelCapacity;
    v.bufferBytes = opts.bufferBytes;
    // Substrate choice is an engine-side decision; the compile-time
    // run checks the substrate-independent artifact only.
    v.checkCgra = false;
    return v;
}

Options
optionsFor(const compiler::OffloadPlan &plan)
{
    return optionsFor(plan.options);
}

const std::vector<Pass> &
passes()
{
    static const std::vector<Pass> all = {
        {"plan", checkPlan},           {"microcode", checkMicrocode},
        {"channels", checkChannels},   {"cgra", checkCgra},
        {"smells", checkSmells},
    };
    return all;
}

Report
verifyPlan(const OffloadPlan &plan, const Options &opts)
{
    Report report;
    for (const Pass &pass : passes())
        pass.run(plan, opts, report);
    return report;
}

void
enforce(const Report &report, compiler::VerifyMode mode,
        const std::string &what)
{
    if (mode == compiler::VerifyMode::Off || report.empty())
        return;
    for (const Diag &d : report.diags())
        warn("verify: %s: %s", what.c_str(), d.str().c_str());
    if (mode == compiler::VerifyMode::Error && !report.ok()) {
        panic("static verification of '%s' failed with %d error(s); "
              "first: %s",
              what.c_str(), report.errorCount(),
              report.diags().front().str().c_str());
    }
}

VType
nodeValueType(const Kernel &kernel, int id)
{
    if (id < 0 || id >= static_cast<int>(kernel.nodes.size()))
        return VType::Unknown;
    const Node &n = kernel.node(id);
    switch (n.kind) {
      case NodeKind::ConstInt:
      case NodeKind::IndVar:
        return VType::Int;
      case NodeKind::ConstFloat:
        return VType::Float;
      case NodeKind::Carry:
        return n.carryIsFloat ? VType::Float : VType::Int;
      case NodeKind::Access: {
          if (n.objId < 0 ||
              n.objId >= static_cast<int>(kernel.objects.size()))
              return VType::Unknown;
          return kernel.objects[static_cast<std::size_t>(n.objId)].isFloat
                     ? VType::Float
                     : VType::Int;
      }
      case NodeKind::Compute:
        if (n.op == OpCode::Mov)
            return nodeValueType(kernel, n.inputA);
        if (n.op == OpCode::Select) {
            const VType t = nodeValueType(kernel, n.inputB);
            const VType f = nodeValueType(kernel, n.inputC);
            return typeClash(t, f) ? VType::Unknown
                                   : (t != VType::Unknown ? t : f);
        }
        return compiler::producesFloat(n.op) ? VType::Float : VType::Int;
      default:
        return VType::Unknown; // Param, MemObject
    }
}

std::string
kernelLoc(const OffloadPlan &plan)
{
    return strfmt("kernel '%s'", plan.kernel.name.c_str());
}

std::string
partLoc(const OffloadPlan &plan, int part)
{
    return strfmt("kernel '%s' partition %d", plan.kernel.name.c_str(),
                  part);
}

std::string
instLoc(const OffloadPlan &plan, int part, std::size_t inst)
{
    return strfmt("kernel '%s' partition %d inst %zu",
                  plan.kernel.name.c_str(), part, inst);
}

} // namespace distda::verify
