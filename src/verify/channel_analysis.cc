/**
 * @file
 * Channel liveness/capacity analysis plus the TokenGraph engine it is
 * built on (declared in src/verify/token_graph.hh and also used by the
 * channels verify pass). Proves steady-state deadlock freedom of the
 * full channel topology under the configured FIFO capacities and
 * infers the minimal safe capacity per channel.
 */

#include "src/verify/token_graph.hh"

#include <algorithm>

#include "src/verify/analysis.hh"

namespace distda::verify
{

using compiler::ChannelDef;
using compiler::MicroInst;
using compiler::MicroKind;
using compiler::OffloadPlan;
using compiler::Partition;

std::vector<std::vector<ChanOp>>
collectChannelOps(const OffloadPlan &plan)
{
    std::vector<std::vector<ChanOp>> ops(plan.partitions.size());
    for (const Partition &part : plan.partitions) {
        for (std::size_t pc = 0; pc < part.program.insts.size(); ++pc) {
            const MicroInst &inst = part.program.insts[pc];
            if (inst.kind != MicroKind::Consume &&
                inst.kind != MicroKind::Produce)
                continue;
            ChanOp op;
            op.partition = part.id;
            op.pc = pc;
            op.isProduce = inst.kind == MicroKind::Produce;
            const auto &table =
                op.isProduce ? part.outChannels : part.inChannels;
            if (inst.slot >= 0 &&
                inst.slot < static_cast<int>(table.size()))
                op.channel = table[static_cast<std::size_t>(inst.slot)];
            if (op.channel >= 0 &&
                op.channel >= static_cast<int>(plan.channels.size()))
                op.channel = -1; // bad slot: microcode pass reports it
            if (part.id >= 0 &&
                part.id < static_cast<int>(ops.size()))
                ops[static_cast<std::size_t>(part.id)].push_back(op);
        }
    }
    return ops;
}

TokenGraph::TokenGraph(const OffloadPlan &plan)
{
    const auto ops = collectChannelOps(plan);

    _producers.resize(plan.channels.size());
    _consumers.resize(plan.channels.size());
    _hostSink.assign(plan.channels.size(), false);
    for (const ChannelDef &ch : plan.channels) {
        if (ch.id >= 0 && ch.id < static_cast<int>(_hostSink.size()))
            _hostSink[static_cast<std::size_t>(ch.id)] =
                ch.dstPartition < 0;
    }

    // Flatten ops into node ids, keeping per-partition program order.
    for (const auto &part_ops : ops) {
        int prev = -1;
        for (const ChanOp &op : part_ops) {
            const int id = static_cast<int>(_numOps++);
            _opPartition.push_back(op.partition);
            _opChannel.push_back(op.channel);
            if (prev >= 0)
                _structural.push_back(Edge{prev, id});
            prev = id;
            if (op.channel < 0) {
                _balanced = false;
                continue;
            }
            auto &table = op.isProduce ? _producers : _consumers;
            table[static_cast<std::size_t>(op.channel)].push_back(id);
        }
    }

    // Data edges: the j-th consume of a channel waits on its j-th
    // produce (zero initial tokens). Host-sunk channels have no
    // microcode consume; the host drains them outside the graph.
    for (std::size_t ch = 0; ch < _producers.size(); ++ch) {
        const auto &prod = _producers[ch];
        const auto &cons = _consumers[ch];
        if (!_hostSink[ch] && prod.size() != cons.size())
            _balanced = false;
        const std::size_t n = std::min(prod.size(), cons.size());
        for (std::size_t j = 0; j < n; ++j)
            _structural.push_back(Edge{prod[j], cons[j]});
    }
}

int
TokenGraph::tokensPerIter(int channel) const
{
    if (channel < 0 ||
        channel >= static_cast<int>(_producers.size()))
        return 0;
    return static_cast<int>(
        _producers[static_cast<std::size_t>(channel)].size());
}

bool
TokenGraph::cyclic(const std::vector<std::vector<int>> &succ,
                   int *witness) const
{
    // Iterative DFS (colors: 0 white, 1 grey, 2 black).
    std::vector<int> color(_numOps, 0);
    std::vector<int> stack;
    for (std::size_t root = 0; root < _numOps; ++root) {
        if (color[root] != 0)
            continue;
        stack.push_back(static_cast<int>(root));
        while (!stack.empty()) {
            const int v = stack.back();
            if (color[static_cast<std::size_t>(v)] == 0) {
                color[static_cast<std::size_t>(v)] = 1;
                for (int w : succ[static_cast<std::size_t>(v)]) {
                    if (color[static_cast<std::size_t>(w)] == 1) {
                        if (witness)
                            *witness = w;
                        return true;
                    }
                    if (color[static_cast<std::size_t>(w)] == 0)
                        stack.push_back(w);
                }
            } else {
                color[static_cast<std::size_t>(v)] = 2;
                stack.pop_back();
            }
        }
    }
    return false;
}

bool
TokenGraph::structuralDeadlock(int *partition) const
{
    std::vector<std::vector<int>> succ(_numOps);
    for (const Edge &e : _structural)
        succ[static_cast<std::size_t>(e.from)].push_back(e.to);
    int witness = -1;
    if (!cyclic(succ, &witness))
        return false;
    if (partition)
        *partition = witness >= 0
                         ? _opPartition[static_cast<std::size_t>(witness)]
                         : -1;
    return true;
}

bool
TokenGraph::deadlocksWith(const std::vector<int> &capacities,
                          int *channel) const
{
    std::vector<std::vector<int>> succ(_numOps);
    for (const Edge &e : _structural)
        succ[static_cast<std::size_t>(e.from)].push_back(e.to);

    // Capacity back-edges: produce number n*p + j blocks until consume
    // number n*p + j - K has retired. In marked-graph form that is an
    // edge consume_{j'} -> produce_j with (j' - j + K) / p initial
    // tokens, j' = ((j - K) mod p + p) mod p; only zero-token edges
    // (K <= j, i.e. K < p) can close a deadlock cycle.
    for (std::size_t ch = 0; ch < _producers.size(); ++ch) {
        if (_hostSink[ch])
            continue; // drained promptly by the host
        const auto &prod = _producers[ch];
        const auto &cons = _consumers[ch];
        if (prod.empty() || prod.size() != cons.size())
            continue;
        const int cap = ch < capacities.size()
                            ? capacities[ch]
                            : unboundedCapacity;
        if (cap >= unboundedCapacity)
            continue;
        const int k = std::max(cap, 0);
        const int p = static_cast<int>(prod.size());
        for (int j = k; j < p; ++j) {
            const int jp = j - k; // zero-token source consume
            succ[static_cast<std::size_t>(
                     cons[static_cast<std::size_t>(jp)])]
                .push_back(prod[static_cast<std::size_t>(j)]);
        }
    }

    int witness = -1;
    if (!cyclic(succ, &witness))
        return false;
    if (channel)
        *channel = witness >= 0
                       ? _opChannel[static_cast<std::size_t>(witness)]
                       : -1;
    return true;
}

int
TokenGraph::minSafeCapacity(int channel) const
{
    if (channel < 0 ||
        channel >= static_cast<int>(_producers.size()))
        return -1;
    const int p = tokensPerIter(channel);
    if (p == 0)
        return 1; // no producers: any depth is trivially safe
    std::vector<int> caps(_producers.size(), unboundedCapacity);
    for (int k = 1; k <= p; ++k) {
        caps[static_cast<std::size_t>(channel)] = k;
        if (!deadlocksWith(caps, nullptr))
            return k;
    }
    return -1;
}

void
analyzeChannels(const OffloadPlan &plan, const AnalysisOptions &opts,
                FactStore &facts)
{
    const TokenGraph graph(plan);

    for (const ChannelDef &ch : plan.channels) {
        ChannelFact f;
        f.channel = ch.id;
        f.tokensPerIter = graph.tokensPerIter(ch.id);
        f.configuredCapacity = opts.capacityOf(ch.id);
        f.minSafeCapacity =
            graph.balanced() ? graph.minSafeCapacity(ch.id) : -1;
        facts.channels.push_back(f);
    }

    if (plan.channels.empty()) {
        // Single-actor plan: nothing to wait on.
        facts.deadlockFree = Verdict::Proven;
        return;
    }
    if (!graph.balanced()) {
        facts.deadlockFree = Verdict::Unknown;
        return;
    }
    std::vector<int> caps(plan.channels.size(), 0);
    for (const ChannelDef &ch : plan.channels) {
        if (ch.id >= 0 && ch.id < static_cast<int>(caps.size()))
            caps[static_cast<std::size_t>(ch.id)] =
                opts.capacityOf(ch.id);
    }
    facts.deadlockFree = graph.deadlocksWith(caps, nullptr)
                             ? Verdict::Violated
                             : Verdict::Proven;
}

} // namespace distda::verify
