#include "src/verify/diag.hh"

#include <cstdarg>

#include "src/sim/logging.hh"

namespace distda::verify
{

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
      default: return "?";
    }
}

std::string
Diag::str() const
{
    return strfmt("%s [%s] %s: %s", severityName(severity), pass.c_str(),
                  location.c_str(), message.c_str());
}

void
Report::add(Severity severity, const std::string &pass,
            const std::string &location, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    Diag d;
    d.severity = severity;
    d.pass = pass;
    d.location = location;
    d.message = vstrfmt(fmt, ap);
    va_end(ap);
    _diags.push_back(std::move(d));
}

int
Report::errorCount() const
{
    int n = 0;
    for (const Diag &d : _diags)
        n += d.severity == Severity::Error;
    return n;
}

int
Report::warningCount() const
{
    int n = 0;
    for (const Diag &d : _diags)
        n += d.severity == Severity::Warning;
    return n;
}

bool
Report::mentions(const std::string &needle) const
{
    for (const Diag &d : _diags) {
        if (d.message.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

bool
Report::hasErrorFrom(const std::string &pass) const
{
    for (const Diag &d : _diags) {
        if (d.severity == Severity::Error && d.pass == pass)
            return true;
    }
    return false;
}

std::string
Report::str() const
{
    std::string out;
    for (const Diag &d : _diags) {
        out += d.str();
        out += '\n';
    }
    return out;
}

} // namespace distda::verify
