/**
 * @file
 * Static verification of compiler artifacts (the safety net between
 * codegen and the engine): a pass manager over an OffloadPlan that
 * validates microcode well-formedness, channel-graph liveness, the
 * partitioner's invariants and CGRA mapping legality before anything
 * executes. DataMaestro- and Dato-style dataflow compilers ship the
 * same kind of plan checkers; here every invariant corresponds to a
 * paper rule (Table VI encoding, the SSIV-B decoupling contract, the
 * SSV-A partitioning constraints).
 *
 * Passes:
 *   plan       partitioner invariants: node coverage, <=1 object per
 *              partition, accessor placement, cut edges materialized
 *              as channels, carry cycles intra-partition, Table VI
 *              characteristics consistency
 *   microcode  per-partition programs: def-before-use dataflow,
 *              register/slot bounds against the buffer-allocation
 *              table, ALU operand arity, int/float type propagation
 *              through CarrySlots, byteSize() == 8 * insts
 *   channels   the SSIV-B decoupling contract: produce/consume counts
 *              balanced per iteration, no zero-capacity channels, no
 *              first-iteration channel-dependence deadlock
 *   cgra       mapping legality when the plan will run on a fabric:
 *              FU-class availability, II >= max(ResMII, RecMII)
 *   smells     warnings: dead registers, dead loads, unused accessors,
 *              empty partitions
 */

#ifndef DISTDA_VERIFY_VERIFY_HH
#define DISTDA_VERIFY_VERIFY_HH

#include <string>
#include <vector>

#include "src/cgra/cgra.hh"
#include "src/compiler/plan.hh"
#include "src/verify/diag.hh"

namespace distda::verify
{

/** What to check and against which engine parameters. */
struct Options
{
    /** Decoupling depth the engine will instantiate (elements). */
    int channelCapacity = 64;
    /** Access-unit buffer capacity (combining-distance bound). */
    std::uint32_t bufferBytes = 4096;
    /** Also check CGRA mapping legality against @ref fabric. */
    bool checkCgra = false;
    cgra::CgraParams fabric;
    /** Run the warning-only smell passes. */
    bool smells = true;
};

/** Verification parameters implied by the compile options. */
Options optionsFor(const compiler::CompileOptions &opts);

/**
 * Verification parameters for a standalone plan (cached or
 * deserialized): derived from the options the plan was compiled with.
 */
Options optionsFor(const compiler::OffloadPlan &plan);

/** One registered verification pass. */
struct Pass
{
    const char *name;
    void (*run)(const compiler::OffloadPlan &plan, const Options &opts,
                Report &report);
};

/** All passes in execution order. */
const std::vector<Pass> &passes();

/** Run every pass over @p plan and collect the findings. */
Report verifyPlan(const compiler::OffloadPlan &plan,
                  const Options &opts = Options{});

/**
 * Report and enforce: warnings go to warn(); under
 * VerifyMode::Error any error panics (a plan that fails static
 * verification is a compiler bug), under Warn errors are downgraded
 * to warn() so the run proceeds at the caller's risk.
 */
void enforce(const Report &report, compiler::VerifyMode mode,
             const std::string &what);

} // namespace distda::verify

#endif // DISTDA_VERIFY_VERIFY_HH
