/**
 * @file
 * Equivalence of the predecoded execution stream and the raw microcode
 * interpreter: every registered workload must produce bit-identical
 * metrics on both paths. The predecode pass only hoists indirections
 * (accessor defs, register slots, channel topology) and batches
 * integer-exact counters per run() slice, so any observable difference
 * is a bug, including in floating-point energy totals.
 */

#include <gtest/gtest.h>

#include "src/driver/runner.hh"
#include "src/engine/actor.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace distda;

/** Restore the global predecode toggle no matter how the test exits. */
struct PredecodeGuard
{
    ~PredecodeGuard() { engine::setPredecodeEnabled(true); }
};

void
expectSameMetrics(const driver::Metrics &a, const driver::Metrics &b,
                  const std::string &what)
{
    EXPECT_EQ(a.timeNs, b.timeNs) << what;
    EXPECT_EQ(a.hostInsts, b.hostInsts) << what;
    EXPECT_EQ(a.accelInsts, b.accelInsts) << what;
    EXPECT_EQ(a.kernelMemOps, b.kernelMemOps) << what;
    EXPECT_EQ(a.hostMemOps, b.hostMemOps) << what;
    EXPECT_EQ(a.mmioOps, b.mmioOps) << what;
    EXPECT_EQ(a.cacheAccesses, b.cacheAccesses) << what;
    EXPECT_EQ(a.dataMovementBytes, b.dataMovementBytes) << what;
    EXPECT_EQ(a.totalEnergyPj, b.totalEnergyPj) << what;
    EXPECT_EQ(a.nocCtrlBytes, b.nocCtrlBytes) << what;
    EXPECT_EQ(a.nocDataBytes, b.nocDataBytes) << what;
    EXPECT_EQ(a.nocAccCtrlBytes, b.nocAccCtrlBytes) << what;
    EXPECT_EQ(a.nocAccDataBytes, b.nocAccDataBytes) << what;
    EXPECT_EQ(a.intraBytes, b.intraBytes) << what;
    EXPECT_EQ(a.daBytes, b.daBytes) << what;
    EXPECT_EQ(a.aaBytes, b.aaBytes) << what;
}

driver::Metrics
runWith(bool predecode, const std::string &workload,
        driver::ArchModel model)
{
    engine::setPredecodeEnabled(predecode);
    driver::RunConfig config;
    config.model = model;
    driver::RunOptions opts;
    opts.scale = 0.25;
    return driver::runWorkload(workload, config, opts);
}

/**
 * Every workload, on both accelerator substrates (in-order microcoded
 * cores and CGRA fabrics, which take different pacing paths through
 * the actor loop).
 */
TEST(Predecode, MatchesInterpreterOnEveryWorkload)
{
    PredecodeGuard guard;
    for (const std::string &w : workloads::workloadNames()) {
        for (driver::ArchModel m : {driver::ArchModel::DistDA_IO,
                                    driver::ArchModel::DistDA_F}) {
            const auto slow = runWith(false, w, m);
            const auto fast = runWith(true, w, m);
            expectSameMetrics(
                fast, slow,
                w + " / " + driver::archModelName(m));
        }
    }
}

/** The private-cache (Mono-CA) and forwarding (Mono-DA) port paths. */
TEST(Predecode, MatchesInterpreterOnMonolithicConfigs)
{
    PredecodeGuard guard;
    for (driver::ArchModel m : {driver::ArchModel::MonoCA,
                                driver::ArchModel::MonoDA_F}) {
        const auto slow = runWith(false, "pr", m);
        const auto fast = runWith(true, "pr", m);
        expectSameMetrics(fast, slow,
                          std::string("pr / ") +
                              driver::archModelName(m));
    }
}

} // namespace
