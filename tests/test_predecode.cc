/**
 * @file
 * Equivalence of the predecoded execution stream and the raw microcode
 * interpreter: every registered workload must produce bit-identical
 * metrics on both paths. The predecode pass only hoists indirections
 * (accessor defs, register slots, channel topology) and batches
 * integer-exact counters per run() slice, so any observable difference
 * is a bug, including in floating-point energy totals.
 */

#include <gtest/gtest.h>

#include "src/driver/context.hh"
#include "src/driver/runner.hh"
#include "src/driver/system.hh"
#include "src/engine/actor.hh"
#include "src/workloads/workload.hh"

namespace
{

using namespace distda;

/** Restore the global predecode toggle no matter how the test exits. */
struct PredecodeGuard
{
    ~PredecodeGuard() { engine::setPredecodeEnabled(true); }
};

void
expectSameMetrics(const driver::Metrics &a, const driver::Metrics &b,
                  const std::string &what)
{
    EXPECT_EQ(a.timeNs, b.timeNs) << what;
    EXPECT_EQ(a.hostInsts, b.hostInsts) << what;
    EXPECT_EQ(a.accelInsts, b.accelInsts) << what;
    EXPECT_EQ(a.kernelMemOps, b.kernelMemOps) << what;
    EXPECT_EQ(a.hostMemOps, b.hostMemOps) << what;
    EXPECT_EQ(a.mmioOps, b.mmioOps) << what;
    EXPECT_EQ(a.cacheAccesses, b.cacheAccesses) << what;
    EXPECT_EQ(a.dataMovementBytes, b.dataMovementBytes) << what;
    EXPECT_EQ(a.totalEnergyPj, b.totalEnergyPj) << what;
    EXPECT_EQ(a.nocCtrlBytes, b.nocCtrlBytes) << what;
    EXPECT_EQ(a.nocDataBytes, b.nocDataBytes) << what;
    EXPECT_EQ(a.nocAccCtrlBytes, b.nocAccCtrlBytes) << what;
    EXPECT_EQ(a.nocAccDataBytes, b.nocAccDataBytes) << what;
    EXPECT_EQ(a.intraBytes, b.intraBytes) << what;
    EXPECT_EQ(a.daBytes, b.daBytes) << what;
    EXPECT_EQ(a.aaBytes, b.aaBytes) << what;
}

driver::Metrics
runWith(bool predecode, const std::string &workload,
        driver::ArchModel model)
{
    engine::setPredecodeEnabled(predecode);
    driver::RunConfig config;
    config.model = model;
    driver::RunOptions opts;
    opts.scale = 0.25;
    return driver::runWorkload(workload, config, opts);
}

/**
 * Every workload, on both accelerator substrates (in-order microcoded
 * cores and CGRA fabrics, which take different pacing paths through
 * the actor loop).
 */
TEST(Predecode, MatchesInterpreterOnEveryWorkload)
{
    PredecodeGuard guard;
    for (const std::string &w : workloads::workloadNames()) {
        for (driver::ArchModel m : {driver::ArchModel::DistDA_IO,
                                    driver::ArchModel::DistDA_F}) {
            const auto slow = runWith(false, w, m);
            const auto fast = runWith(true, w, m);
            expectSameMetrics(
                fast, slow,
                w + " / " + driver::archModelName(m));
        }
    }
}

/** The private-cache (Mono-CA) and forwarding (Mono-DA) port paths. */
TEST(Predecode, MatchesInterpreterOnMonolithicConfigs)
{
    PredecodeGuard guard;
    for (driver::ArchModel m : {driver::ArchModel::MonoCA,
                                driver::ArchModel::MonoDA_F}) {
        const auto slow = runWith(false, "pr", m);
        const auto fast = runWith(true, "pr", m);
        expectSameMetrics(fast, slow,
                          std::string("pr / ") +
                              driver::archModelName(m));
    }
}

/**
 * Multi-kernel equivalence with warm plan caches, through the
 * per-engine override (RunConfig::predecodeOverride) instead of the
 * global toggle: two distinct kernels, each invoked three times in one
 * context, so re-invocations hit the cached CompiledKernel and the
 * cached predecoded streams. Metrics and memory must stay
 * bit-identical between the interpreter and predecode paths.
 */
TEST(Predecode, MatchesInterpreterOnMultiKernelWarmCacheRuns)
{
    const std::uint64_t n = 192;
    auto runOnce = [n](int predecode, std::vector<double> &out) {
        driver::SystemParams sp;
        driver::System sys(sp);
        auto a = sys.alloc("a", n, 8, false);
        auto b = sys.alloc("b", n, 8, false);
        for (std::uint64_t i = 0; i < n; ++i) {
            a.setI(i, static_cast<std::int64_t>(i) - 40);
            b.setI(i, 3 * static_cast<std::int64_t>(i % 17));
        }

        compiler::KernelBuilder scale("warm_scale");
        int sa = scale.object("a", n, 8, false);
        int sb = scale.object("b", n, 8, false);
        scale.loopStatic(static_cast<std::int64_t>(n));
        scale.store(sb, scale.affine(0, 1),
                    scale.iadd(scale.load(sa, scale.affine(0, 1)),
                               scale.load(sb, scale.affine(0, 1))));
        const compiler::Kernel k1 = scale.build();

        compiler::KernelBuilder reduce("warm_reduce");
        int ra = reduce.object("a", n, 8, false);
        reduce.loopStatic(static_cast<std::int64_t>(n));
        compiler::Word zero;
        zero.i = 0;
        auto acc = reduce.carry(zero, false, "acc");
        reduce.setCarry(
            acc, reduce.iadd(acc, reduce.load(ra, reduce.affine(0, 1))));
        reduce.markResult(acc);
        const compiler::Kernel k2 = reduce.build();

        driver::RunConfig cfg;
        cfg.model = driver::ArchModel::DistDA_IO;
        cfg.predecodeOverride = predecode;
        driver::ExecContext ctx(sys, cfg);
        std::int64_t sum = 0;
        for (int rep = 0; rep < 3; ++rep) {
            ctx.invoke(k1, {a, b}, {});
            ctx.invoke(k2, {a}, {});
            sum += ctx.resultI(0);
        }
        const driver::Metrics m = ctx.finish();
        out = {m.timeNs,        m.hostInsts,    m.accelInsts,
               m.kernelMemOps,  m.hostMemOps,   m.mmioOps,
               m.cacheAccesses, m.totalEnergyPj, m.nocCtrlBytes,
               m.nocDataBytes,  m.intraBytes,   m.daBytes,
               static_cast<double>(sum)};
        for (std::uint64_t i = 0; i < n; ++i)
            out.push_back(static_cast<double>(b.getI(i)));
    };

    std::vector<double> interp;
    std::vector<double> pre;
    runOnce(0, interp);
    runOnce(1, pre);
    ASSERT_EQ(interp.size(), pre.size());
    for (std::size_t i = 0; i < interp.size(); ++i)
        EXPECT_EQ(interp[i], pre[i]) << "field " << i;
}

} // namespace
