/**
 * @file
 * Unit tests for the mesh NoC: XY routing properties over every node
 * pair, latency/serialization behaviour, traffic-class byte
 * conservation, multicast link sharing and the energy charge per
 * flit-hop.
 */

#include <gtest/gtest.h>

#include "src/noc/mesh.hh"

using namespace distda;

namespace
{

noc::Mesh
makeMesh(energy::Accountant *acct)
{
    return noc::Mesh(noc::MeshParams{}, acct);
}

} // namespace

TEST(Mesh, HopCountIsManhattanDistance)
{
    energy::Accountant acct;
    auto mesh = makeMesh(&acct);
    for (int a = 0; a < 8; ++a) {
        for (int b = 0; b < 8; ++b) {
            const int ax = a % 4, ay = a / 4;
            const int bx = b % 4, by = b / 4;
            EXPECT_EQ(mesh.hops(a, b),
                      std::abs(ax - bx) + std::abs(ay - by));
            EXPECT_EQ(mesh.hops(a, b), mesh.hops(b, a));
        }
    }
}

TEST(Mesh, LocalDeliveryIsFree)
{
    energy::Accountant acct;
    auto mesh = makeMesh(&acct);
    auto r = mesh.transfer(3, 3, 64, noc::TrafficClass::Data, 0);
    EXPECT_EQ(r.latency, 0u);
    EXPECT_EQ(r.hops, 0);
    // Bytes are still accounted (the class totals feed Fig 9/10).
    EXPECT_DOUBLE_EQ(mesh.bytesInClass(noc::TrafficClass::Data), 64.0);
    EXPECT_DOUBLE_EQ(acct.componentPj(energy::Component::Noc), 0.0);
}

TEST(Mesh, LatencyGrowsWithDistanceAndSize)
{
    energy::Accountant acct;
    auto mesh = makeMesh(&acct);
    const auto near = mesh.transfer(0, 1, 8, noc::TrafficClass::Data,
                                    0);
    const auto far = mesh.transfer(0, 7, 8, noc::TrafficClass::Data,
                                   1000000);
    EXPECT_GT(far.latency, near.latency);
    const auto small = mesh.transfer(0, 1, 8, noc::TrafficClass::Data,
                                     2000000);
    const auto big = mesh.transfer(0, 1, 512, noc::TrafficClass::Data,
                                   3000000);
    EXPECT_GT(big.latency, small.latency);
}

TEST(Mesh, ClassesAccountedSeparately)
{
    energy::Accountant acct;
    auto mesh = makeMesh(&acct);
    mesh.transfer(0, 1, 10, noc::TrafficClass::Ctrl, 0);
    mesh.transfer(0, 1, 20, noc::TrafficClass::Data, 0);
    mesh.transfer(0, 1, 30, noc::TrafficClass::AccCtrl, 0);
    mesh.transfer(0, 1, 40, noc::TrafficClass::AccData, 0);
    EXPECT_DOUBLE_EQ(mesh.bytesInClass(noc::TrafficClass::Ctrl), 10.0);
    EXPECT_DOUBLE_EQ(mesh.bytesInClass(noc::TrafficClass::Data), 20.0);
    EXPECT_DOUBLE_EQ(mesh.bytesInClass(noc::TrafficClass::AccCtrl),
                     30.0);
    EXPECT_DOUBLE_EQ(mesh.bytesInClass(noc::TrafficClass::AccData),
                     40.0);
    EXPECT_DOUBLE_EQ(mesh.totalBytes(), 100.0);
}

TEST(Mesh, EnergyPerFlitHop)
{
    energy::Accountant acct;
    auto mesh = makeMesh(&acct);
    // 16 bytes = 2 flits over 2 hops.
    mesh.transfer(0, 2, 16, noc::TrafficClass::Data, 0);
    EXPECT_DOUBLE_EQ(acct.componentPj(energy::Component::Noc),
                     2.0 * 2.0 * acct.params().nocHopFlitPj);
}

TEST(Mesh, ContentionDelaysBackToBackTransfers)
{
    energy::Accountant acct;
    auto mesh = makeMesh(&acct);
    const auto first = mesh.transfer(0, 3, 512,
                                     noc::TrafficClass::Data, 0);
    const auto second = mesh.transfer(0, 3, 512,
                                      noc::TrafficClass::Data, 0);
    EXPECT_GT(second.latency, first.latency);
}

TEST(Mesh, ResetClearsCountersAndBusyState)
{
    energy::Accountant acct;
    auto mesh = makeMesh(&acct);
    mesh.transfer(0, 3, 512, noc::TrafficClass::Data, 0);
    mesh.reset();
    EXPECT_DOUBLE_EQ(mesh.totalBytes(), 0.0);
    const auto again = mesh.transfer(0, 3, 512,
                                     noc::TrafficClass::Data, 0);
    const auto fresh_mesh_latency =
        makeMesh(&acct).transfer(0, 3, 512, noc::TrafficClass::Data, 0)
            .latency;
    EXPECT_EQ(again.latency, fresh_mesh_latency);
}

TEST(Mesh, MulticastChargesSharedLinksOnce)
{
    energy::Accountant acct1, acct2;
    auto m1 = makeMesh(&acct1);
    auto m2 = makeMesh(&acct2);
    // Destinations along one path share every link.
    m1.multicast(0, {1, 2, 3}, 8, noc::TrafficClass::AccData, 0);
    // Equivalent unicasts traverse 1+2+3 = 6 hops.
    m2.transfer(0, 1, 8, noc::TrafficClass::AccData, 0);
    m2.transfer(0, 2, 8, noc::TrafficClass::AccData, 0);
    m2.transfer(0, 3, 8, noc::TrafficClass::AccData, 0);
    EXPECT_LT(acct1.componentPj(energy::Component::Noc),
              acct2.componentPj(energy::Component::Noc));
}

TEST(Mesh, BadNodePanics)
{
    energy::Accountant acct;
    auto mesh = makeMesh(&acct);
    EXPECT_DEATH((void)mesh.hops(0, 8), "node");
}

class MeshGeometry
    : public testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(MeshGeometry, TriangleInequalityOnHops)
{
    energy::Accountant acct;
    auto mesh = makeMesh(&acct);
    const auto [a, b] = GetParam();
    for (int mid = 0; mid < 8; ++mid) {
        EXPECT_LE(mesh.hops(a, b),
                  mesh.hops(a, mid) + mesh.hops(mid, b));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, MeshGeometry,
    testing::Values(std::make_pair(0, 7), std::make_pair(3, 4),
                    std::make_pair(1, 6), std::make_pair(2, 2)));
