/**
 * @file
 * Unit tests for the simulation substrate: event queue ordering, clock
 * domains, deterministic RNG and the stats framework.
 */

#include <gtest/gtest.h>

#include "death_helpers.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/json.hh"
#include "src/sim/rng.hh"
#include "src/sim/stats.hh"
#include "src/sim/ticks.hh"
#include "src/sim/trace.hh"

#include <cmath>
#include <set>

using namespace distda;
using sim::Tick;

TEST(EventQueue, RunsInTickOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&order] { order.push_back(3); });
    eq.schedule(10, [&order] { order.push_back(1); });
    eq.schedule(20, [&order] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, EqualTicksFifo)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, SameTickFifoSurvivesHeapChurnAndMidDrainInserts)
{
    // Pin the (tick, insertion-order) contract hard: interleave the
    // insertion of 32 events across two ticks (so heap pushes and pops
    // churn the underlying container), and have one tick-10 event
    // append a same-tick follow-up mid-drain. FIFO requires each
    // tick's events in insertion order, with the follow-up last at
    // its tick because it was inserted last.
    sim::EventQueue eq;
    std::vector<std::pair<Tick, int>> order;
    for (int i = 0; i < 16; ++i) {
        eq.schedule(20, [&order, i] { order.push_back({20, i}); });
        eq.schedule(10, [&order, i] { order.push_back({10, i}); });
    }
    eq.schedule(10, [&] {
        eq.scheduleIn(0, [&order] { order.push_back({10, 99}); });
    });
    eq.run();
    ASSERT_EQ(order.size(), 33u);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)],
                  (std::pair<Tick, int>{10, i}));
        EXPECT_EQ(order[static_cast<std::size_t>(17 + i)],
                  (std::pair<Tick, int>{20, i}));
    }
    EXPECT_EQ(order[16], (std::pair<Tick, int>{10, 99}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] {
        ++fired;
        eq.scheduleIn(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 15u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    sim::EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(EventQueue, ResetClearsState)
{
    sim::EventQueue eq;
    eq.schedule(10, [] {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
}

class ClockDomainFreq : public testing::TestWithParam<double>
{
};

TEST_P(ClockDomainFreq, RoundTripsCycles)
{
    const auto clock = sim::gigahertz(GetParam());
    for (sim::Cycles c : {1ul, 2ul, 10ul, 1000ul, 123457ul}) {
        const Tick t = clock.cyclesToTicks(c);
        EXPECT_EQ(clock.ticksToCycles(t), c);
        EXPECT_EQ(t % clock.period(), 0u);
    }
}

TEST_P(ClockDomainFreq, ClockEdgeIsAligned)
{
    const auto clock = sim::gigahertz(GetParam());
    for (Tick t : {0ul, 1ul, 499ul, 500ul, 12345ul}) {
        const Tick edge = clock.clockEdge(t);
        EXPECT_GE(edge, t);
        EXPECT_EQ(edge % clock.period(), 0u);
        EXPECT_LT(edge - t, clock.period());
    }
}

INSTANTIATE_TEST_SUITE_P(Freqs, ClockDomainFreq,
                         testing::Values(1.0, 2.0, 3.0, 0.5));

TEST(Rng, Deterministic)
{
    sim::Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    sim::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BoundedStaysBounded)
{
    sim::Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(97), 97u);
}

TEST(Rng, DoubleInUnitInterval)
{
    sim::Rng rng(9);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_LT(lo, 0.05);
    EXPECT_GT(hi, 0.95);
}

TEST(Stats, ScalarAccumulates)
{
    stats::Group g("test");
    auto &s = g.add("counter");
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(g.get("counter").value(), 3.5);
    g.resetAll();
    EXPECT_DOUBLE_EQ(g.get("counter").value(), 0.0);
}

TEST(Stats, ChildLookupByPath)
{
    stats::Group parent("sys");
    stats::Group child("cache");
    child.add("hits") = 7.0;
    parent.addChild(&child);
    EXPECT_DOUBLE_EQ(parent.value("cache.hits"), 7.0);
}

TEST(Stats, DumpFlattensNames)
{
    stats::Group parent("sys");
    stats::Group child("noc");
    parent.add("time") = 1.0;
    child.add("bytes") = 2.0;
    parent.addChild(&child);
    const auto dump = parent.dump();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_EQ(dump[0].first, "sys.time");
    EXPECT_EQ(dump[1].first, "sys.noc.bytes");
}

TEST(Stats, MissingStatPanics)
{
    stats::Group g("test");
    EXPECT_DEATH((void)g.get("nope"), "not found");
}

TEST(Trace, FlagParsingAndEnable)
{
    trace::setEnabled(trace::Flag::Stream, false);
    trace::setEnabled(trace::Flag::Actor, false);
    EXPECT_FALSE(trace::enabled(trace::Flag::Stream));
    trace::enableFromList("Stream,Actor");
    EXPECT_TRUE(trace::enabled(trace::Flag::Stream));
    EXPECT_TRUE(trace::enabled(trace::Flag::Actor));
    EXPECT_FALSE(trace::enabled(trace::Flag::Noc));
    trace::setEnabled(trace::Flag::Stream, false);
    trace::setEnabled(trace::Flag::Actor, false);
}

TEST(Trace, FlagNamesUnique)
{
    std::set<std::string> names;
    for (unsigned i = 0;
         i < static_cast<unsigned>(trace::Flag::NumFlags); ++i)
        names.insert(trace::flagName(static_cast<trace::Flag>(i)));
    EXPECT_EQ(names.size(),
              static_cast<std::size_t>(trace::Flag::NumFlags));
}

TEST(Stats, DistributionMoments)
{
    stats::Distribution d(0.0, 10.0, 5);
    for (double v : {1.0, 3.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_DOUBLE_EQ(d.count(), 5.0);
    EXPECT_DOUBLE_EQ(d.sum(), 25.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    // Population stdev of {1,3,5,7,9} is sqrt(8).
    EXPECT_NEAR(d.stdev(), std::sqrt(8.0), 1e-12);
    ASSERT_EQ(d.numBuckets(), 5u);
    for (std::size_t i = 0; i < d.numBuckets(); ++i)
        EXPECT_DOUBLE_EQ(d.bucketCount(i), 1.0);
    EXPECT_DOUBLE_EQ(d.underflow(), 0.0);
    EXPECT_DOUBLE_EQ(d.overflow(), 0.0);
}

TEST(Stats, DistributionOutOfRangeAndWeights)
{
    stats::Distribution d(0.0, 4.0, 4);
    d.sample(-1.0);      // below lo
    d.sample(4.0);       // hi is exclusive
    d.sample(100.0);
    d.sample(1.5, 3.0);  // weighted
    EXPECT_DOUBLE_EQ(d.underflow(), 1.0);
    EXPECT_DOUBLE_EQ(d.overflow(), 2.0);
    EXPECT_DOUBLE_EQ(d.count(), 6.0); // 1 + 2 + weight 3
    EXPECT_DOUBLE_EQ(d.bucketCount(1), 3.0);
    EXPECT_DOUBLE_EQ(d.min(), -1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    d.reset();
    EXPECT_DOUBLE_EQ(d.count(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.bucketCount(1), 0.0);
}

TEST(Stats, FormulaEvaluatesOnDemand)
{
    stats::Group g("eng");
    stats::Scalar &insts = g.add("insts");
    stats::Scalar &cycles = g.add("cycles");
    g.addFormula("ipc", [&insts, &cycles] {
        return cycles.value() > 0.0 ? insts.value() / cycles.value()
                                    : 0.0;
    });
    EXPECT_DOUBLE_EQ(g.value("ipc"), 0.0);
    insts = 30.0;
    cycles = 10.0;
    EXPECT_DOUBLE_EQ(g.value("ipc"), 3.0);
}

TEST(Stats, DuplicateNamesPanic)
{
    stats::Group g("dup");
    g.add("x");
    EXPECT_PANIC(g.add("x"), "duplicate stat");
    g.addDistribution("d");
    EXPECT_PANIC(g.addDistribution("d"), "duplicate stat");
    EXPECT_PANIC(g.addFormula("x", [] { return 0.0; }),
                 "duplicate stat");
    stats::Group c1("child");
    stats::Group c2("child");
    g.addChild(&c1);
    EXPECT_PANIC(g.addChild(&c2), "duplicate child");
}

TEST(Stats, ValueMissingPathPanics)
{
    stats::Group parent("sys");
    stats::Group child("noc");
    child.add("bytes") = 7.0;
    parent.addChild(&child);
    EXPECT_DOUBLE_EQ(parent.value("noc.bytes"), 7.0);
    EXPECT_PANIC((void)parent.value("mem.bytes"), "has no child");
    EXPECT_PANIC((void)parent.value("noc.nope"), "not found");
}

TEST(Stats, JsonDumpRoundTrips)
{
    stats::Group g("run");
    g.add("ticks") = 42.0;
    g.addFormula("twice", [] { return 84.0; });
    stats::Distribution &d = g.addDistribution("lat", 0.0, 8.0, 2);
    d.sample(1.0);
    d.sample(5.0);
    const std::string text = g.jsonString();
    EXPECT_NE(text.find("\"ticks\":42"), std::string::npos);
    EXPECT_NE(text.find("\"twice\":84"), std::string::npos);
    EXPECT_NE(text.find("\"type\":\"distribution\""),
              std::string::npos);
    EXPECT_NE(text.find("\"count\":2"), std::string::npos);
    EXPECT_NE(text.find("\"mean\":3"), std::string::npos);
}

TEST(Trace, EnableAllKeyword)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(trace::Flag::NumFlags); ++i)
        trace::setEnabled(static_cast<trace::Flag>(i), false);
    trace::enableFromList("all");
    for (unsigned i = 0;
         i < static_cast<unsigned>(trace::Flag::NumFlags); ++i)
        EXPECT_TRUE(trace::enabled(static_cast<trace::Flag>(i)))
            << trace::flagName(static_cast<trace::Flag>(i));
    for (unsigned i = 0;
         i < static_cast<unsigned>(trace::Flag::NumFlags); ++i)
        trace::setEnabled(static_cast<trace::Flag>(i), false);
}

TEST(Trace, UnknownAndEmptyListsAreNoOps)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(trace::Flag::NumFlags); ++i)
        trace::setEnabled(static_cast<trace::Flag>(i), false);
    trace::enableFromList("");           // empty list: nothing happens
    trace::enableFromList("NoSuchFlag"); // warns, enables nothing
    trace::enableFromList(",,");         // empty elements skipped
    for (unsigned i = 0;
         i < static_cast<unsigned>(trace::Flag::NumFlags); ++i)
        EXPECT_FALSE(trace::enabled(static_cast<trace::Flag>(i)));
}

TEST(P2Quantile, ExactForSmallSamples)
{
    stats::P2Quantile q(0.5);
    EXPECT_DOUBLE_EQ(q.value(), 0.0); // empty
    q.add(5.0);
    EXPECT_DOUBLE_EQ(q.value(), 5.0);
    q.add(1.0);
    q.add(3.0);
    EXPECT_DOUBLE_EQ(q.value(), 3.0); // median of {1,3,5}
    q.add(4.0);
    q.add(2.0);
    EXPECT_DOUBLE_EQ(q.value(), 3.0); // median of {1..5}
    EXPECT_EQ(q.samples(), 5u);
}

TEST(P2Quantile, TracksLargeStreams)
{
    // Deterministic pseudo-shuffle of 1..10007 (7919 is coprime with
    // 10007): exact quantiles are known, P2 must land within a few
    // percent.
    stats::P2Quantile p50(0.5);
    stats::P2Quantile p95(0.95);
    stats::P2Quantile p99(0.99);
    const int n = 10007;
    for (int i = 0; i < n; ++i) {
        const double v =
            static_cast<double>((static_cast<long long>(i) * 7919) %
                                n) +
            1.0;
        p50.add(v);
        p95.add(v);
        p99.add(v);
    }
    EXPECT_NEAR(p50.value(), 0.50 * n, 0.03 * n);
    EXPECT_NEAR(p95.value(), 0.95 * n, 0.03 * n);
    EXPECT_NEAR(p99.value(), 0.99 * n, 0.03 * n);
}

TEST(P2Quantile, ResetClearsState)
{
    stats::P2Quantile q(0.9);
    for (int i = 0; i < 100; ++i)
        q.add(i);
    q.reset();
    EXPECT_EQ(q.samples(), 0u);
    EXPECT_DOUBLE_EQ(q.value(), 0.0);
    q.add(7.0);
    EXPECT_DOUBLE_EQ(q.value(), 7.0);
}

TEST(Stats, DistributionQuantilesAreOrderedAndDumped)
{
    stats::Distribution d(0.0, 1000.0, 10);
    for (int i = 1; i <= 1000; ++i)
        d.sample(i);
    // The ordering clamp is a hard invariant oracles rely on.
    EXPECT_LE(d.p50(), d.p95());
    EXPECT_LE(d.p95(), d.p99());
    EXPECT_NEAR(d.p50(), 500.0, 50.0);
    EXPECT_NEAR(d.p99(), 990.0, 30.0);

    stats::Group g("t");
    g.addDistribution("lat", 0.0, 1000.0, 10) = d;
    const std::string text = g.jsonString();
    EXPECT_NE(text.find("\"p50\":"), std::string::npos);
    EXPECT_NE(text.find("\"p95\":"), std::string::npos);
    EXPECT_NE(text.find("\"p99\":"), std::string::npos);
}

TEST(Json, ParserRoundTripsWriterOutput)
{
    sim::JsonWriter w;
    w.beginObject();
    w.key("name").value("run \"x\"\n");
    w.key("count").value(std::int64_t{42});
    w.key("ratio").value(0.125);
    w.key("ok").value(true);
    w.key("items").beginArray();
    w.value(std::uint64_t{1});
    w.beginObject();
    w.key("nested").value(-2.5);
    w.endObject();
    w.endArray();
    w.endObject();

    const sim::JsonValue doc = sim::parseJson(w.str(), "test");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("name").str, "run \"x\"\n");
    EXPECT_DOUBLE_EQ(doc.at("count").num, 42.0);
    EXPECT_DOUBLE_EQ(doc.at("ratio").num, 0.125);
    EXPECT_TRUE(doc.at("ok").b);
    ASSERT_TRUE(doc.at("items").isArray());
    ASSERT_EQ(doc.at("items").arr.size(), 2u);
    EXPECT_DOUBLE_EQ(doc.at("items").arr[1].at("nested").num, -2.5);
    // Member order is preserved for diff alignment.
    EXPECT_EQ(doc.obj.front().first, "name");
    EXPECT_EQ(doc.obj.back().first, "items");
}

TEST(Json, ParserAcceptsEscapesAndRejectsGarbage)
{
    sim::JsonValue v;
    std::string err;
    ASSERT_TRUE(
        sim::tryParseJson(R"({"s":"aA\t\\"})", v, err));
    EXPECT_EQ(v.at("s").str, "aA\t\\");

    const char *bad[] = {
        "",          "{",         "[1,]",       "{\"a\":}",
        "{\"a\" 1}", "tru",       "1 2",        "\"unterminated",
        "{\"a\":1,}" /* trailing comma */,
    };
    for (const char *text : bad) {
        EXPECT_FALSE(sim::tryParseJson(text, v, err))
            << "accepted: " << text;
        EXPECT_FALSE(err.empty());
    }
}

TEST(Json, FindAndAtBehave)
{
    const sim::JsonValue doc =
        sim::parseJson(R"({"a":1,"b":null})", "test");
    EXPECT_NE(doc.find("a"), nullptr);
    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_TRUE(doc.at("b").isNull());
    EXPECT_PANIC((void)doc.at("missing"), "missing");
}

TEST(Json, UnicodeEscapesDecodeToUtf8)
{
    sim::JsonValue v;
    std::string err;

    // One escape from each UTF-8 length class (RFC 8259 section 7).
    ASSERT_TRUE(sim::tryParseJson(R"("\u0041")", v, err)) << err;
    EXPECT_EQ(v.str, "A");
    ASSERT_TRUE(sim::tryParseJson(R"("\u00E9")", v, err)) << err;
    EXPECT_EQ(v.str, "\xc3\xa9"); // e-acute
    ASSERT_TRUE(sim::tryParseJson(R"("\u20AC")", v, err)) << err;
    EXPECT_EQ(v.str, "\xe2\x82\xac"); // euro sign
    ASSERT_TRUE(sim::tryParseJson(R"("\u0000")", v, err)) << err;
    EXPECT_EQ(v.str, std::string(1, '\0'));

    // A surrogate pair combines into one 4-byte code point
    // (U+1D11E, musical G clef).
    ASSERT_TRUE(sim::tryParseJson(R"("\uD834\uDD1E")", v, err)) << err;
    EXPECT_EQ(v.str, "\xf0\x9d\x84\x9e");
    // Lowercase hex digits and surrounding text both work
    // (U+1F600, grinning face).
    ASSERT_TRUE(sim::tryParseJson(R"("a\ud83d\ude00z")", v, err)) << err;
    EXPECT_EQ(v.str, "a\xf0\x9f\x98\x80z");
}

TEST(Json, LoneAndMalformedSurrogatesAreRejectedWithPosition)
{
    sim::JsonValue v;
    std::string err;
    const struct
    {
        const char *text;
        const char *fragment;
    } bad[] = {
        {R"("\uD834")", "unpaired high surrogate"},
        {R"("\uD834x")", "unpaired high surrogate"},
        {R"("\uD834\n")", "unpaired high surrogate"},
        {R"("\uD834\uD834")", "unpaired high surrogate"},
        {R"("\uD834A")", "unpaired high surrogate"},
        {R"("\uDD1E")", "lone low surrogate"},
        {R"("\uD8")", "\\u escape"},
        {R"("\uZZZZ")", "\\u escape"},
    };
    for (const auto &c : bad) {
        EXPECT_FALSE(sim::tryParseJson(c.text, v, err))
            << "accepted: " << c.text;
        EXPECT_NE(err.find(c.fragment), std::string::npos)
            << c.text << " -> " << err;
        EXPECT_NE(err.find("offset"), std::string::npos)
            << c.text << " -> " << err;
    }
}

TEST(Json, WriterEscapesControlCharactersRoundTrip)
{
    // Every C0 control character must be escaped on output and decode
    // back to itself; \b, \f, \n, \r, \t use their short forms.
    std::string raw;
    for (char c = 1; c < 0x20; ++c)
        raw.push_back(c);
    raw.push_back('\0');

    const std::string escaped = sim::jsonEscape(raw);
    EXPECT_NE(escaped.find("\\b"), std::string::npos);
    EXPECT_NE(escaped.find("\\f"), std::string::npos);
    EXPECT_NE(escaped.find("\\n"), std::string::npos);
    EXPECT_NE(escaped.find("\\u0000"), std::string::npos);
    for (char c : escaped)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);

    sim::JsonValue v;
    std::string err;
    ASSERT_TRUE(sim::tryParseJson("\"" + escaped + "\"", v, err))
        << err;
    EXPECT_EQ(v.str, raw);
}

TEST(Json, RawValueAndDumpSpliceVerbatim)
{
    // rawValue splices an already-serialized document; dumpJsonValue
    // re-serializes a parsed one. Together they round-trip a report
    // subtree byte-exactly through an envelope.
    sim::JsonWriter inner;
    inner.beginObject();
    inner.key("metric").value(0.5);
    inner.key("note").value("caf\xc3\xa9");
    inner.endObject();
    const std::string report = inner.str();

    sim::JsonWriter envelope;
    envelope.beginObject();
    envelope.key("ok").value(true);
    envelope.key("missing").nullValue();
    envelope.key("report").rawValue(report);
    envelope.endObject();

    sim::JsonValue doc;
    std::string err;
    ASSERT_TRUE(sim::tryParseJson(envelope.str(), doc, err)) << err;
    EXPECT_TRUE(doc.at("missing").isNull());
    ASSERT_TRUE(doc.at("report").isObject());
    EXPECT_DOUBLE_EQ(doc.at("report").at("metric").num, 0.5);

    sim::JsonWriter dumped;
    sim::dumpJsonValue(doc.at("report"), dumped);
    EXPECT_EQ(dumped.str(), report);
}
