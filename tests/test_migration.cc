/**
 * @file
 * Tests for the Livia-style memory-service layer (§IV-B interface
 * generality): every policy computes the same results, data-location
 * dispatch executes at the data's home cluster, and migration cuts
 * host-side cache walks for scattered single-line tasks.
 */

#include <gtest/gtest.h>

#include "src/driver/system.hh"
#include "src/offload/migration.hh"
#include "src/sim/rng.hh"

using namespace distda;
using offload::MemoryServiceLayer;
using offload::MigrationPolicy;

namespace
{

struct TaskTrace
{
    std::uint64_t idx;
    double operand;
};

std::vector<TaskTrace>
makeTasks(std::uint64_t count, std::uint64_t array_size)
{
    sim::Rng rng(123);
    std::vector<TaskTrace> tasks;
    for (std::uint64_t i = 0; i < count; ++i)
        tasks.push_back(
            {rng.nextBelow(array_size), rng.nextDouble() * 100.0});
    return tasks;
}

struct PolicyRun
{
    std::vector<double> values;
    sim::Tick endTick = 0;
    double hostCacheAccesses = 0.0;
    double migrated = 0.0;
    double localShare = 0.0;
};

PolicyRun
runPolicy(MigrationPolicy policy)
{
    driver::SystemParams sp;
    sp.arenaBytes = 32 << 20;
    driver::System sys(sp);
    const std::uint64_t n = 1 << 16;
    auto arr = sys.alloc("vals", n, 8, true);
    for (std::uint64_t i = 0; i < n; ++i)
        arr.setF(i, 1e9);

    MemoryServiceLayer svc(&sys.hier(), &sys.acct(), policy);
    sim::Tick now = 0;
    for (const auto &t : makeTasks(4096, n))
        now = svc.runTask(arr, t.idx, t.operand, now);

    PolicyRun r;
    r.endTick = now;
    for (std::uint64_t i = 0; i < 256; ++i)
        r.values.push_back(arr.getF(i));
    r.hostCacheAccesses =
        sys.hier().l1().accesses() + sys.hier().l2().accesses();
    r.migrated = svc.stats().migrated;
    r.localShare = svc.stats().tasks > 0
                       ? svc.stats().localExecutions /
                             svc.stats().tasks
                       : 0.0;
    return r;
}

} // namespace

TEST(Migration, AllPoliciesComputeSameResult)
{
    const auto host = runPolicy(MigrationPolicy::HostOnly);
    const auto coin = runPolicy(MigrationPolicy::CoinFlip);
    const auto data = runPolicy(MigrationPolicy::DataLocation);
    EXPECT_EQ(host.values, coin.values);
    EXPECT_EQ(host.values, data.values);
}

TEST(Migration, DataLocationRunsAtHome)
{
    const auto data = runPolicy(MigrationPolicy::DataLocation);
    EXPECT_GT(data.localShare, 0.95);
    EXPECT_DOUBLE_EQ(data.migrated, 4096.0);
}

TEST(Migration, CoinFlipMigratesAboutHalf)
{
    const auto coin = runPolicy(MigrationPolicy::CoinFlip);
    EXPECT_GT(coin.migrated, 4096.0 * 0.4);
    EXPECT_LT(coin.migrated, 4096.0 * 0.6);
}

TEST(Migration, MigrationAvoidsHostCacheWalks)
{
    const auto host = runPolicy(MigrationPolicy::HostOnly);
    const auto data = runPolicy(MigrationPolicy::DataLocation);
    // Scattered single-line tasks thrash the host L1/L2; near-data
    // dispatch bypasses them entirely.
    EXPECT_LT(data.hostCacheAccesses, host.hostCacheAccesses * 0.1);
}

TEST(Migration, PolicyNamesResolve)
{
    EXPECT_STREQ(migrationPolicyName(MigrationPolicy::HostOnly),
                 "host-only");
    EXPECT_STREQ(migrationPolicyName(MigrationPolicy::CoinFlip),
                 "coin-flip");
    EXPECT_STREQ(migrationPolicyName(MigrationPolicy::DataLocation),
                 "data-location");
}
