/**
 * @file
 * Unit tests for the access units (Fig 2c): stream fill/drain FSM
 * behaviour, multi-tap reuse accounting, sparse-stride specialization,
 * window retention across rewinds, dirty-chunk draining, Mono-DA
 * forwarding traffic, and the random-access run-ahead path.
 */

#include <gtest/gtest.h>

#include "src/accel/access_unit.hh"
#include "src/energy/energy_model.hh"

using namespace distda;
using accel::AccessStats;
using accel::StreamParams;
using accel::StreamUnit;

namespace
{

struct PortLog
{
    std::vector<std::pair<mem::Addr, bool>> calls;
    sim::Tick latency = 10000;

    sim::Tick
    operator()(mem::Addr a, std::uint32_t, bool w, sim::Tick)
    {
        calls.push_back({a, w});
        return latency;
    }

    accel::MemPort fn() { return accel::MemPort::of(*this); }

    double
    fetches() const
    {
        double n = 0;
        for (const auto &[a, w] : calls)
            n += !w;
        return n;
    }

    double
    drains() const
    {
        double n = 0;
        for (const auto &[a, w] : calls)
            n += w;
        return n;
    }
};

StreamParams
denseLoad(std::uint64_t total = 1024)
{
    StreamParams p;
    p.base = 0x100000;
    p.strideBytes = 8;
    p.elemBytes = 8;
    p.totalElems = total;
    return p;
}

energy::Accountant acctForMesh;

noc::Mesh &
sharedMesh()
{
    static noc::Mesh mesh(noc::MeshParams{}, &acctForMesh);
    return mesh;
}

} // namespace

TEST(StreamUnit, DenseStreamFetchesLineGranules)
{
    PortLog port;
    AccessStats stats;
    StreamUnit s(denseLoad(64), port.fn(), &sharedMesh(), &stats);
    sim::Tick now = 0;
    for (std::int64_t k = 0; k < 64; ++k)
        now = s.readAt(k, now, 0);
    EXPECT_EQ(s.elemsPerFetch(), 8);
    EXPECT_DOUBLE_EQ(port.fetches(), 8.0); // 64 elems / 8 per line
    EXPECT_DOUBLE_EQ(stats.daBytes, 8.0 * 64.0);
    EXPECT_DOUBLE_EQ(stats.intraBytes, 64.0 * 8.0);
}

TEST(StreamUnit, ReadyTimesAreMonotonicPerTap)
{
    PortLog port;
    AccessStats stats;
    StreamUnit s(denseLoad(), port.fn(), &sharedMesh(), &stats);
    sim::Tick now = 0;
    for (std::int64_t k = 0; k < 256; ++k) {
        const sim::Tick t = s.readAt(k, now, 0);
        EXPECT_GE(t, now);
        now = t + 500;
    }
}

TEST(StreamUnit, FollowerTapsHitTheWindow)
{
    PortLog port;
    AccessStats stats;
    StreamUnit s(denseLoad(128), port.fn(), &sharedMesh(), &stats);
    sim::Tick now = 0;
    for (std::int64_t k = 0; k < 128; ++k) {
        now = s.readAt(k, now, 0);
        now = s.readAt(k, now, 4); // follower 4 elements behind
    }
    // The follower adds no fetches beyond the lead tap's (plus the
    // one prologue line below element 0).
    EXPECT_LE(port.fetches(), 128.0 / 8.0 + 1.0);
}

TEST(StreamUnit, SparseStrideFetchesElementsOnly)
{
    PortLog port;
    AccessStats stats;
    StreamParams p = denseLoad(64);
    p.strideBytes = 512; // column-like stride
    StreamUnit s(p, port.fn(), &sharedMesh(), &stats);
    sim::Tick now = 0;
    for (std::int64_t k = 0; k < 64; ++k)
        now = s.readAt(k, now, 0);
    EXPECT_EQ(s.elemsPerFetch(), 1);
    EXPECT_DOUBLE_EQ(port.fetches(), 64.0);
    // Access specialization: 8B per fetch, not a 64B line.
    EXPECT_DOUBLE_EQ(stats.daBytes, 64.0 * 8.0);
}

TEST(StreamUnit, LoopInvariantFetchesOnce)
{
    PortLog port;
    AccessStats stats;
    StreamParams p = denseLoad(128);
    p.strideBytes = 0;
    StreamUnit s(p, port.fn(), &sharedMesh(), &stats);
    sim::Tick now = 0;
    for (std::int64_t k = 0; k < 128; ++k)
        now = s.readAt(k, now, 0);
    EXPECT_DOUBLE_EQ(port.fetches(), 1.0);
}

TEST(StreamUnit, PrefetchHidesLatencyInSteadyState)
{
    PortLog port;
    port.latency = 8000; // 8ns
    AccessStats stats;
    StreamUnit s(denseLoad(4096), port.fn(), &sharedMesh(), &stats);
    sim::Tick now = 0;
    // Consume slowly (16ns per element): after warmup, reads must not
    // stall on fetches.
    sim::Tick stall = 0;
    for (std::int64_t k = 0; k < 512; ++k) {
        const sim::Tick t = s.readAt(k, now, 0);
        if (k > 64)
            stall += t - now;
        now = t + 16000;
    }
    EXPECT_EQ(stall, 0u);
}

TEST(StreamUnit, FastPathMatchesSlowPathStatsAndFetches)
{
    // Steady-state sequential reads take the precomputed-bounds fast
    // path; interleaved rereads of already-consumed elements do too.
    // Neither may change what reaches memory or the counters, relative
    // to a unit driven only by the plain sequential scan.
    PortLog fast_port, ref_port;
    AccessStats fast_stats, ref_stats;
    StreamUnit fast(denseLoad(256), fast_port.fn(), &sharedMesh(),
                    &fast_stats);
    StreamUnit ref(denseLoad(256), ref_port.fn(), &sharedMesh(),
                   &ref_stats);

    sim::Tick now = 0;
    std::int64_t rereads = 0;
    sim::Tick prev = 0;
    for (std::int64_t k = 0; k < 256; ++k) {
        now = fast.readAt(k, now, 0);
        EXPECT_GE(now, prev); // ready times stay monotonic
        prev = now;
        if (k > 0 && k % 16 == 0) {
            // In-window reread behind the lead: fast-path candidate.
            now = fast.readAt(k, now, 4);
            ++rereads;
        }
    }
    sim::Tick ref_now = 0;
    for (std::int64_t k = 0; k < 256; ++k)
        ref_now = ref.readAt(k, ref_now, 0);

    // Recently-read data is buffered: no fetch may be reissued.
    EXPECT_DOUBLE_EQ(fast_port.fetches(), ref_port.fetches());
    EXPECT_DOUBLE_EQ(fast_stats.daBytes, ref_stats.daBytes);
    // Every read, fast or slow, counts buffer traffic.
    EXPECT_DOUBLE_EQ(fast_stats.intraBytes,
                     ref_stats.intraBytes +
                         static_cast<double>(rereads) * 8.0);
    EXPECT_DOUBLE_EQ(fast_stats.bufferAccesses,
                     ref_stats.bufferAccesses +
                         static_cast<double>(rereads));
}

TEST(StreamUnit, StoreOnlyWriteAllocatesWithoutFetch)
{
    PortLog port;
    AccessStats stats;
    StreamParams p = denseLoad(256);
    p.hasLoads = false;
    p.hasStores = true;
    StreamUnit s(p, port.fn(), &sharedMesh(), &stats);
    sim::Tick now = 0;
    for (std::int64_t k = 0; k < 256; ++k)
        now = s.writeAt(k, now, 0) + 500;
    EXPECT_DOUBLE_EQ(port.fetches(), 0.0);
    s.flush(now);
    // All 32 line-granules must eventually drain exactly once.
    EXPECT_DOUBLE_EQ(port.drains(), 256.0 / 8.0);
}

TEST(StreamUnit, RmwFetchesOnceAndDrainsDirty)
{
    PortLog port;
    AccessStats stats;
    StreamParams p = denseLoad(64);
    p.hasStores = true;
    StreamUnit s(p, port.fn(), &sharedMesh(), &stats);
    sim::Tick now = 0;
    for (std::int64_t k = 0; k < 64; ++k) {
        now = s.readAt(k, now, 0);
        now = s.writeAt(k, now, 0) + 500;
    }
    const sim::Tick done = s.flush(now);
    EXPECT_GE(done, now);
    EXPECT_DOUBLE_EQ(port.fetches(), 8.0);
    EXPECT_DOUBLE_EQ(port.drains(), 8.0);
}

TEST(StreamUnit, RewindRetainsFullyResidentWindow)
{
    PortLog port;
    AccessStats stats;
    StreamUnit s(denseLoad(64), port.fn(), &sharedMesh(), &stats);
    sim::Tick now = 0;
    for (std::int64_t k = 0; k < 64; ++k)
        now = s.readAt(k, now, 0);
    const double first_pass = port.fetches();
    s.rewind(now);
    for (std::int64_t k = 0; k < 64; ++k)
        now = s.readAt(k, now, 0);
    // Reuse across outer-loop iterations: no refetch.
    EXPECT_DOUBLE_EQ(port.fetches(), first_pass);
}

TEST(StreamUnit, RewindDiscardsOversizedWindow)
{
    PortLog port;
    AccessStats stats;
    StreamParams p = denseLoad(4096); // 32KB > 4KB buffer
    StreamUnit s(p, port.fn(), &sharedMesh(), &stats);
    sim::Tick now = 0;
    for (std::int64_t k = 0; k < 4096; ++k)
        now = s.readAt(k, now, 0);
    const double first_pass = port.fetches();
    s.rewind(now);
    for (std::int64_t k = 0; k < 64; ++k)
        now = s.readAt(k, now, 0);
    EXPECT_GT(port.fetches(), first_pass);
}

TEST(StreamUnit, RemoteConsumerCountsForwardingTraffic)
{
    PortLog port;
    AccessStats stats;
    auto &mesh = sharedMesh();
    const double aa_before = stats.aaBytes;
    StreamParams p = denseLoad(64);
    p.unitCluster = 0;
    p.consumerCluster = 3;
    StreamUnit s(p, port.fn(), &mesh, &stats);
    sim::Tick now = 0;
    for (std::int64_t k = 0; k < 64; ++k)
        now = s.readAt(k, now, 0);
    // Operand forward (8B) per element plus one batched 8B credit per
    // chunk (8 elements/line).
    EXPECT_DOUBLE_EQ(stats.aaBytes - aa_before,
                     64.0 * 8.0 + (64.0 / 8.0) * 8.0);
}

TEST(RandomUnit, RunAheadHidesLatency)
{
    PortLog port;
    port.latency = 20000;
    AccessStats stats;
    accel::RandomUnit ru(0, port.fn(), &stats, 500);
    const sim::Tick exposed = ru.access(0x1000, 8, false, 0, 0);
    const sim::Tick hidden = ru.access(0x2000, 8, false, 0, 48 * 500);
    EXPECT_GT(exposed, hidden);
    EXPECT_EQ(hidden, 500u); // translation cycle only
}

TEST(RandomUnit, WritesArePosted)
{
    PortLog port;
    port.latency = 20000;
    AccessStats stats;
    accel::RandomUnit ru(0, port.fn(), &stats, 500);
    const sim::Tick done = ru.access(0x1000, 8, true, 0, 0);
    EXPECT_EQ(done, 500u);
    EXPECT_DOUBLE_EQ(port.drains(), 1.0);
    EXPECT_DOUBLE_EQ(stats.daBytes, 8.0);
}

TEST(StreamUnit, WrongDirectionPanics)
{
    PortLog port;
    AccessStats stats;
    StreamUnit load_only(denseLoad(), port.fn(), &sharedMesh(), &stats);
    EXPECT_DEATH((void)load_only.writeAt(0, 0, 0), "writeAt");
    StreamParams p = denseLoad();
    p.hasLoads = false;
    p.hasStores = true;
    StreamUnit store_only(p, port.fn(), &sharedMesh(), &stats);
    EXPECT_DEATH((void)store_only.readAt(0, 0, 0), "store-only");
}
