/**
 * @file
 * Tests for the differential fuzz harness itself: generator
 * determinism, .repro round-tripping, validator rejection of malformed
 * cases, oracle agreement on generated cases, shrinker behaviour under
 * an artificial oracle, and replay of the committed corpus (every past
 * counterexample is a permanent regression test; DISTDA_CORPUS_DIR
 * points at tests/corpus in the source tree).
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <gtest/gtest.h>

#include "src/fuzz/campaign.hh"
#include "src/fuzz/diff.hh"
#include "src/fuzz/gen.hh"
#include "src/fuzz/shrink.hh"

using namespace distda;
using fuzz::FuzzCase;

namespace
{

struct QuietGuard
{
    QuietGuard()
    {
        setInformEnabled(false);
        setWarnEnabled(false);
    }
    ~QuietGuard()
    {
        setInformEnabled(true);
        setWarnEnabled(true);
    }
};

/** Total node count across all kernels — the shrinker's yardstick. */
std::size_t
nodeCount(const FuzzCase &c)
{
    std::size_t n = 0;
    for (const compiler::Kernel &k : c.kernels)
        n += k.nodes.size();
    return n;
}

bool
containsOp(const FuzzCase &c, compiler::OpCode op)
{
    for (const compiler::Kernel &k : c.kernels) {
        for (const compiler::Node &n : k.nodes) {
            if (n.kind == compiler::NodeKind::Compute && n.op == op)
                return true;
        }
    }
    return false;
}

} // namespace

TEST(FuzzGen, DeterministicForSeed)
{
    QuietGuard quiet;
    const FuzzCase a = fuzz::generateCase(1234);
    const FuzzCase b = fuzz::generateCase(1234);
    EXPECT_EQ(fuzz::serializeCase(a), fuzz::serializeCase(b));
    const FuzzCase c = fuzz::generateCase(1235);
    EXPECT_NE(fuzz::serializeCase(a), fuzz::serializeCase(c));
}

TEST(FuzzGen, GeneratedCasesAreValid)
{
    QuietGuard quiet;
    for (std::uint64_t seed = 100; seed < 160; ++seed) {
        const FuzzCase c = fuzz::generateCase(seed);
        EXPECT_EQ(fuzz::validateCase(c), "") << "seed " << seed;
    }
}

TEST(FuzzGen, ShapesProduceTheirStructure)
{
    QuietGuard quiet;
    fuzz::GenOptions opts;
    opts.shape = fuzz::Shape::MultiKernel;
    bool multi = false;
    for (std::uint64_t seed = 0; seed < 16 && !multi; ++seed)
        multi = fuzz::generateCase(seed, opts).kernels.size() > 1;
    EXPECT_TRUE(multi) << "multikernel shape never produced >1 kernel";
}

TEST(FuzzCaseIo, SerializeParseRoundTrips)
{
    QuietGuard quiet;
    for (std::uint64_t seed : {7ull, 42ull, 90001ull}) {
        const FuzzCase c = fuzz::generateCase(seed);
        const std::string text = fuzz::serializeCase(c);
        const FuzzCase back = fuzz::parseCase(text);
        EXPECT_EQ(fuzz::serializeCase(back), text) << "seed " << seed;
        EXPECT_EQ(fuzz::validateCase(back), "") << "seed " << seed;
    }
}

TEST(FuzzCaseIo, SaveLoadRoundTrips)
{
    QuietGuard quiet;
    const FuzzCase c = fuzz::generateCase(5);
    const std::string path =
        (std::filesystem::temp_directory_path() / "distda_fuzz_io.repro")
            .string();
    fuzz::saveCase(c, path);
    const FuzzCase back = fuzz::loadCase(path);
    EXPECT_EQ(fuzz::serializeCase(back), fuzz::serializeCase(c));
    std::remove(path.c_str());
}

TEST(FuzzValidate, CatchesOutOfBoundsAffine)
{
    QuietGuard quiet;
    FuzzCase c = fuzz::generateCase(11);
    ASSERT_EQ(fuzz::validateCase(c), "");
    // Push one access pattern past its object: validation must fail
    // rather than let a path fault at simulation time.
    for (compiler::Kernel &k : c.kernels) {
        for (compiler::Node &n : k.nodes) {
            if (n.kind == compiler::NodeKind::Access &&
                n.pattern == compiler::PatternKind::Affine) {
                n.affine.constBase = 1 << 20;
                EXPECT_NE(fuzz::validateCase(c), "");
                return;
            }
        }
    }
    GTEST_SKIP() << "case has no affine access";
}

TEST(FuzzValidate, CatchesDuplicateBindingsAndBadTrips)
{
    QuietGuard quiet;
    FuzzCase c = fuzz::generateCase(17);
    ASSERT_EQ(fuzz::validateCase(c), "");
    {
        FuzzCase dup = c;
        fuzz::Invocation &inv = dup.invocations.front();
        if (inv.objects.size() >= 2) {
            inv.objects[1] = inv.objects[0];
            EXPECT_NE(fuzz::validateCase(dup), "");
        }
    }
    {
        FuzzCase zero = c;
        compiler::Kernel &k = zero.kernels.front();
        if (k.loop.extentParam < 0) {
            k.loop.staticExtent = 0;
            EXPECT_NE(fuzz::validateCase(zero), "");
        }
    }
}

TEST(FuzzDiff, GeneratedCasesAgreeAcrossAllPaths)
{
    QuietGuard quiet;
    for (std::uint64_t seed = 500; seed < 510; ++seed) {
        const FuzzCase c = fuzz::generateCase(seed);
        const fuzz::DiffOutcome out = fuzz::runDifferential(c);
        EXPECT_TRUE(out.ok())
            << "seed " << seed << ": " << out.summary();
        EXPECT_GE(out.paths.size(), 4u);
    }
}

TEST(FuzzDiff, InvalidCaseIsItsOwnFindingKind)
{
    QuietGuard quiet;
    FuzzCase c = fuzz::generateCase(3);
    c.invocations.clear();
    const fuzz::DiffOutcome out = fuzz::runDifferential(c);
    ASSERT_EQ(out.findings.size(), 1u);
    EXPECT_EQ(out.findings[0].kind,
              fuzz::Finding::Kind::InvalidCase);
}

TEST(FuzzShrink, MinimizesUnderArtificialOracle)
{
    QuietGuard quiet;
    // Find a generated case containing an IMul, then shrink under the
    // oracle "still contains an IMul". The minimizer must produce a
    // dramatically smaller — and still valid — case that keeps the
    // property.
    FuzzCase seed_case;
    bool found = false;
    for (std::uint64_t seed = 0; seed < 64 && !found; ++seed) {
        seed_case = fuzz::generateCase(seed);
        found = containsOp(seed_case, compiler::OpCode::IMul);
    }
    ASSERT_TRUE(found) << "no generated case used IMul";

    fuzz::ShrinkStats stats;
    const FuzzCase small = fuzz::shrinkCase(
        seed_case,
        [](const FuzzCase &c) {
            return containsOp(c, compiler::OpCode::IMul);
        },
        8, &stats);

    EXPECT_TRUE(containsOp(small, compiler::OpCode::IMul));
    EXPECT_EQ(fuzz::validateCase(small), "");
    EXPECT_LT(nodeCount(small), nodeCount(seed_case));
    EXPECT_LE(small.invocations.size(), seed_case.invocations.size());
    EXPECT_GT(stats.attempts, 0);
    EXPECT_GT(stats.accepted, 0);
    // A lone IMul needs very little scaffolding; anything bigger means
    // a reduction pass stopped pulling its weight.
    EXPECT_LE(nodeCount(small), 12u);
    EXPECT_EQ(small.kernels.size(), 1u);
    for (const fuzz::Invocation &inv : small.invocations)
        EXPECT_LE(small.tripOf(inv), 2);
}

TEST(FuzzCampaign, CleanCampaignReportsNoFailures)
{
    QuietGuard quiet;
    fuzz::CampaignOptions opts;
    opts.seed = 77;
    opts.runs = 25;
    opts.jobs = 2;
    const fuzz::CampaignResult r = fuzz::runCampaign(opts);
    EXPECT_EQ(r.runs, 25);
    EXPECT_TRUE(r.ok()) << r.failures << " failing runs";
}

TEST(FuzzCampaign, CaseSeedsAreDistinctAcrossRuns)
{
    std::vector<std::uint64_t> seeds;
    for (int run = 0; run < 100; ++run)
        seeds.push_back(fuzz::caseSeedFor(9, run));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end());
}

TEST(FuzzCorpus, CommittedReproducersReplayGreen)
{
    QuietGuard quiet;
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(DISTDA_CORPUS_DIR)) {
        if (entry.path().extension() == ".repro")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    ASSERT_FALSE(files.empty())
        << "no .repro files under " << DISTDA_CORPUS_DIR;
    EXPECT_EQ(fuzz::replayCorpus(files), 0);
}
