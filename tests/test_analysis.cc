/**
 * @file
 * Plan-analysis tests: the abstract domain's lattice algebra, and one
 * positive plus one negative case per analysis — provable, unprovable
 * and violated bounds; a capacity-deadlock cycle vs a pipelined live
 * plan; the purity classes plus the aliasing escape hatch; connected
 * vs isolated cluster interference. The soundness contract itself is
 * fuzzed continuously (src/fuzz/diff.cc); these tests pin the exact
 * verdicts and numbers the fuzzer only checks for consistency.
 */

#include <gtest/gtest.h>

#include <limits>

#include "src/compiler/plan.hh"
#include "src/sim/json.hh"
#include "src/verify/analysis.hh"
#include "src/verify/token_graph.hh"
#include "src/verify/verify.hh"

using namespace distda;
using namespace distda::compiler;
using verify::AnalysisOptions;
using verify::Interval;
using verify::InvocationProfile;
using verify::PurityClass;
using verify::Verdict;

namespace
{

constexpr std::int64_t intMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t intMax = std::numeric_limits<std::int64_t>::max();

/** C[i] = A[i] + A[i+1] with a static 512-iteration loop. */
Kernel
makeStreamKernel()
{
    KernelBuilder kb("stream");
    const int a = kb.object("A", 1024, 8, true);
    const int c = kb.object("C", 1024, 8, true);
    kb.loopStatic(512);
    auto x = kb.load(a, kb.affine(0, 1));
    auto y = kb.load(a, kb.affine(1, 1));
    kb.store(c, kb.affine(0, 1), kb.fadd(x, y));
    return kb.build();
}

/** Same shape, but the trip count arrives in parameter 0. */
Kernel
makeParamStreamKernel()
{
    KernelBuilder kb("pstream");
    const int a = kb.object("A", 1024, 8, true);
    const int c = kb.object("C", 1024, 8, true);
    const int n = kb.param("n");
    kb.loopFromParam(n);
    auto x = kb.load(a, kb.affine(0, 1));
    auto y = kb.load(a, kb.affine(1, 1));
    kb.store(c, kb.affine(0, 1), kb.fadd(x, y));
    return kb.build();
}

/** Pure FP reduction: results leave through a carry only. */
Kernel
makeReduceKernel()
{
    KernelBuilder kb("reduce");
    const int a = kb.object("A", 1024, 8, true);
    kb.loopStatic(512);
    auto sum = kb.carry(Word{.f = 0.0}, true);
    auto x = kb.load(a, kb.affine(0, 1));
    kb.setCarry(sum, kb.fadd(sum, x));
    kb.markResult(sum);
    return kb.build();
}

/**
 * Two-channel burst plan: partition 0 produces channel 0 twice and
 * then channel 1 once; partition 1 consumes channel 1 first. With
 * channel 0 at capacity 1 the second produce waits on a consume that
 * waits on channel 1, which is produced only later — a capacity
 * deadlock that depth 2 resolves. Built by hand because the compiler
 * never emits two tokens per iteration on one channel.
 */
OffloadPlan
burstPlan()
{
    OffloadPlan plan;
    plan.kernel.name = "burst";

    ChannelDef ch0;
    ch0.id = 0;
    ch0.srcPartition = 0;
    ch0.dstPartition = 1;
    ch0.bits = 64;
    ChannelDef ch1 = ch0;
    ch1.id = 1;
    plan.channels = {ch0, ch1};

    auto produce = [](int slot) {
        MicroInst m;
        m.kind = MicroKind::Produce;
        m.a = 0;
        m.slot = slot;
        return m;
    };
    auto consume = [](int slot) {
        MicroInst m;
        m.kind = MicroKind::Consume;
        m.dst = 0;
        m.slot = slot;
        return m;
    };

    Partition a;
    a.id = 0;
    a.outChannels = {0, 1};
    a.program.numRegs = 1;
    a.program.insts = {produce(0), produce(0), produce(1)};
    Partition b;
    b.id = 1;
    b.inChannels = {0, 1};
    b.program.numRegs = 1;
    b.program.insts = {consume(1), consume(0), consume(0)};
    plan.partitions = {a, b};
    return plan;
}

} // namespace

// --- The abstract domain. ---

TEST(AnalysisDomain, IntervalLatticeBasics)
{
    const Interval bottom;
    EXPECT_TRUE(bottom.isBottom());
    EXPECT_TRUE(bottom.within(1));       // vacuous
    EXPECT_FALSE(bottom.disjointFrom(1)); // not certainly outside

    const Interval a = Interval::of(2, 5);
    EXPECT_EQ(bottom.join(a), a);
    EXPECT_EQ(a.join(Interval::of(7, 9)), Interval::of(2, 9));
    EXPECT_TRUE(a.within(6));
    EXPECT_FALSE(a.within(5));
    EXPECT_TRUE(a.disjointFrom(2));
    EXPECT_FALSE(a.disjointFrom(3));

    // Widening sends escaping bounds to the infinities.
    const Interval w = a.widen(Interval::of(2, 6));
    EXPECT_EQ(w.lo, 2);
    EXPECT_EQ(w.hi, intMax);
    EXPECT_TRUE(Interval::top().isTop());
}

TEST(AnalysisDomain, SaturatingArithmetic)
{
    const Interval big = Interval::of(intMax - 1, intMax);
    EXPECT_EQ(big.add(Interval::exact(10)).hi, intMax); // saturates
    EXPECT_EQ(big.mul(Interval::exact(0)), Interval::exact(0));
    EXPECT_EQ(Interval::top().mul(Interval::exact(0)),
              Interval::exact(0)); // zero absorbs infinity
    EXPECT_EQ(Interval::of(-3, 4).absVal(), Interval::of(0, 4));
    EXPECT_EQ(Interval::of(1, 2).neg(), Interval::of(-2, -1));
    EXPECT_EQ(Interval::of(intMin, 5).neg().hi, intMax);
}

TEST(AnalysisDomain, ProfileJoinsInvocations)
{
    const Kernel k = makeParamStreamKernel();
    InvocationProfile p;
    p.record(k, {100}, {1024, 1024}, false);
    p.record(k, {50}, {512, 2048}, false);

    EXPECT_EQ(p.invocations, 2);
    EXPECT_EQ(p.trip, Interval::of(50, 100));
    ASSERT_EQ(p.params.size(), 1u);
    EXPECT_EQ(p.params[0], Interval::of(50, 100));
    ASSERT_EQ(p.objectElems.size(), 2u);
    EXPECT_EQ(p.objectElems[0], 512u); // min across invocations
    EXPECT_EQ(p.objectElems[1], 1024u);

    // Exact per-invocation access ranges join across invocations and
    // never exceed the largest trip.
    EXPECT_FALSE(p.accessRanges.empty());
    for (const auto &[node, range] : p.accessRanges) {
        EXPECT_GE(range.lo, 0) << "node " << node;
        EXPECT_LE(range.hi, 100) << "node " << node;
    }

    EXPECT_FALSE(p.aliasedBindings);
    p.record(k, {1}, {8, 8}, true);
    EXPECT_TRUE(p.aliasedBindings);
}

// --- Bounds analysis. ---

TEST(AnalysisBounds, ProvesStaticAffineAccesses)
{
    const auto facts = verify::analyzePlan(compileKernel(makeStreamKernel()));
    ASSERT_EQ(facts.bounds.size(), 3u);
    EXPECT_EQ(facts.boundsCount(Verdict::Proven), 3);
    EXPECT_EQ(facts.violations(), 0);
    for (const auto &f : facts.bounds) {
        EXPECT_TRUE(f.affine);
        EXPECT_TRUE(f.rangeKnown);
        EXPECT_GE(f.lo, 0);
        EXPECT_LE(f.hi, 512); // A[i+1] reaches element 512
        EXPECT_EQ(f.objectElems, 1024u);
    }
}

TEST(AnalysisBounds, ParamTripWithoutProfileIsUnknown)
{
    // No profile and no static extent: the induction variable is
    // unbounded above, so nothing is provable — and nothing Violated.
    const auto facts =
        verify::analyzePlan(compileKernel(makeParamStreamKernel()));
    ASSERT_EQ(facts.bounds.size(), 3u);
    EXPECT_EQ(facts.boundsCount(Verdict::Unknown), 3);
    EXPECT_EQ(facts.violations(), 0);
}

TEST(AnalysisBounds, ProfileMakesParamTripProvable)
{
    const Kernel k = makeParamStreamKernel();
    InvocationProfile p;
    p.record(k, {512}, {1024, 1024}, false);
    AnalysisOptions ao;
    ao.profile = &p;
    const auto facts = verify::analyzePlan(compileKernel(k), ao);
    EXPECT_EQ(facts.boundsCount(Verdict::Proven), 3);
}

TEST(AnalysisBounds, ProfileProvesViolation)
{
    // 512 iterations against 16-element bindings: the exact profile
    // ranges leave the objects on every invocation, so the verdict is
    // Violated, not merely Unknown.
    const Kernel k = makeParamStreamKernel();
    InvocationProfile p;
    p.record(k, {512}, {16, 16}, false);
    AnalysisOptions ao;
    ao.profile = &p;
    const auto facts = verify::analyzePlan(compileKernel(k), ao);
    EXPECT_EQ(facts.boundsCount(Verdict::Violated), 3);
    EXPECT_EQ(facts.violations(), 3);
}

TEST(AnalysisBounds, ClampedIndirectIsProven)
{
    // off = max(min(I[i], 15), 0): the ALU transfer functions bound
    // the memory-derived index, proving the 16-element gather.
    KernelBuilder kb("gather");
    const int d = kb.object("D", 16, 8, false);
    const int ix = kb.object("I", 256, 8, false);
    const int o = kb.object("O", 256, 8, false);
    kb.loopStatic(256);
    auto idx = kb.load(ix, kb.affine(0, 1));
    auto off = kb.imax(kb.imin(idx, kb.constInt(15)), kb.constInt(0));
    kb.store(o, kb.affine(0, 1), kb.loadIdx(d, off));
    const auto facts = verify::analyzePlan(compileKernel(kb.build()));

    bool found = false;
    for (const auto &f : facts.bounds) {
        if (f.affine)
            continue;
        found = true;
        EXPECT_EQ(f.verdict, Verdict::Proven);
        ASSERT_TRUE(f.rangeKnown);
        EXPECT_EQ(f.lo, 0);
        EXPECT_EQ(f.hi, 15);
    }
    EXPECT_TRUE(found) << "no indirect bounds fact produced";
}

TEST(AnalysisBounds, UnclampedIndirectIsUnknown)
{
    // The same gather without the clamp: a memory-derived index is
    // outside the domain, so the sound verdict is Unknown.
    KernelBuilder kb("gather_raw");
    const int d = kb.object("D", 16, 8, false);
    const int ix = kb.object("I", 256, 8, false);
    const int o = kb.object("O", 256, 8, false);
    kb.loopStatic(256);
    auto idx = kb.load(ix, kb.affine(0, 1));
    kb.store(o, kb.affine(0, 1), kb.loadIdx(d, idx));
    const auto facts = verify::analyzePlan(compileKernel(kb.build()));

    bool found = false;
    for (const auto &f : facts.bounds) {
        if (f.affine)
            continue;
        found = true;
        EXPECT_EQ(f.verdict, Verdict::Unknown);
    }
    EXPECT_TRUE(found);
    EXPECT_EQ(facts.violations(), 0);
}

TEST(AnalysisBounds, CarryFixpointConverges)
{
    // An index-chase carry (acc = D[clamp(acc)]) forces the channel/
    // carry fixpoint through widening; the clamp still bounds the
    // access afterwards.
    KernelBuilder kb("chase");
    const int d = kb.object("D", 16, 8, false);
    kb.loopStatic(100);
    auto acc = kb.carry(Word{.i = 0}, false);
    auto off = kb.imax(kb.imin(acc, kb.constInt(15)), kb.constInt(0));
    auto v = kb.loadIdx(d, off);
    kb.setCarry(acc, v);
    kb.markResult(acc);
    const auto facts = verify::analyzePlan(compileKernel(kb.build()));

    bool found = false;
    for (const auto &f : facts.bounds) {
        if (f.affine)
            continue;
        found = true;
        EXPECT_EQ(f.verdict, Verdict::Proven);
    }
    EXPECT_TRUE(found);
}

// --- Channel liveness analysis. ---

TEST(AnalysisChannels, PipelinedPlanLiveAtCapacityOne)
{
    // One token per iteration per channel: live at any depth >= 1.
    const OffloadPlan plan = compileKernel(makeStreamKernel());
    ASSERT_EQ(plan.channels.size(), 1u);
    AnalysisOptions ao;
    ao.channelCapacity = 1;
    verify::FactStore facts;
    verify::analyzeChannels(plan, ao, facts);
    EXPECT_EQ(facts.deadlockFree, Verdict::Proven);
    ASSERT_EQ(facts.channels.size(), 1u);
    EXPECT_EQ(facts.channels[0].tokensPerIter, 1);
    EXPECT_EQ(facts.channels[0].minSafeCapacity, 1);
    EXPECT_EQ(facts.channels[0].configuredCapacity, 1);
}

TEST(AnalysisChannels, BurstPlanNeedsCapacityTwo)
{
    const OffloadPlan plan = burstPlan();
    const verify::TokenGraph graph(plan);
    EXPECT_TRUE(graph.balanced());
    EXPECT_FALSE(graph.structuralDeadlock());
    EXPECT_EQ(graph.tokensPerIter(0), 2);
    EXPECT_EQ(graph.minSafeCapacity(0), 2);
    EXPECT_EQ(graph.minSafeCapacity(1), 1);

    AnalysisOptions ao;
    ao.channelCapacity = 1;
    verify::FactStore shallow;
    verify::analyzeChannels(plan, ao, shallow);
    EXPECT_EQ(shallow.deadlockFree, Verdict::Violated);
    EXPECT_EQ(shallow.violations(), 1);

    ao.channelCapacity = 2;
    verify::FactStore deep;
    verify::analyzeChannels(plan, ao, deep);
    EXPECT_EQ(deep.deadlockFree, Verdict::Proven);
    ASSERT_EQ(deep.channels.size(), 2u);
    EXPECT_EQ(deep.channels[0].minSafeCapacity, 2);
    EXPECT_EQ(deep.channels[1].minSafeCapacity, 1);
}

TEST(AnalysisChannels, PerChannelCapacityOverrides)
{
    // Channel 0 alone needs depth 2; an override there suffices even
    // with the uniform default at 1.
    AnalysisOptions ao;
    ao.channelCapacity = 1;
    ao.channelCapacities = {2};
    verify::FactStore facts;
    verify::analyzeChannels(burstPlan(), ao, facts);
    EXPECT_EQ(facts.deadlockFree, Verdict::Proven);
    EXPECT_EQ(facts.channels[0].configuredCapacity, 2);
    EXPECT_EQ(facts.channels[1].configuredCapacity, 1);
}

TEST(AnalysisChannels, VerifyPassReportsCapacityDeadlock)
{
    // The channels verify pass carries the same model: a cycle closed
    // by a capacity back-edge names the channel and the depth it needs.
    verify::Options vo;
    vo.channelCapacity = 1;
    verify::Report report;
    for (const verify::Pass &pass : verify::passes()) {
        if (std::string(pass.name) == "channels")
            pass.run(burstPlan(), vo, report);
    }
    EXPECT_TRUE(report.hasErrorFrom("channels"));
    EXPECT_TRUE(report.mentions("capacity deadlock")) << report.str();
    EXPECT_TRUE(report.mentions("capacity >= 2")) << report.str();
}

// --- Purity analysis. ---

TEST(AnalysisPurity, ReductionIsPureAndMemoizable)
{
    const auto facts = verify::analyzePlan(compileKernel(makeReduceKernel()));
    EXPECT_EQ(facts.purity.cls, PurityClass::Pure);
    EXPECT_TRUE(facts.purity.memoizable);
    EXPECT_TRUE(facts.purity.writtenObjects.empty());
    EXPECT_EQ(facts.purity.readObjects.size(), 1u);
}

TEST(AnalysisPurity, StreamIsIdempotent)
{
    const auto facts = verify::analyzePlan(compileKernel(makeStreamKernel()));
    EXPECT_EQ(facts.purity.cls, PurityClass::Idempotent);
    EXPECT_TRUE(facts.purity.memoizable);
}

TEST(AnalysisPurity, ReadWriteObjectIsStateful)
{
    // A[i+1] = A[i] + A[i+1]: the written object is also read.
    KernelBuilder kb("inplace");
    const int a = kb.object("A", 1024, 8, true);
    kb.loopStatic(512);
    auto x = kb.load(a, kb.affine(0, 1));
    auto y = kb.load(a, kb.affine(1, 1));
    kb.store(a, kb.affine(1, 1), kb.fadd(x, y));
    const auto facts = verify::analyzePlan(compileKernel(kb.build()));
    EXPECT_EQ(facts.purity.cls, PurityClass::Stateful);
    EXPECT_FALSE(facts.purity.memoizable);
}

TEST(AnalysisPurity, AliasedProfileBlocksMemoization)
{
    // Structure alone says Idempotent, but an observed invocation with
    // overlapping bindings voids the no-aliasing contract.
    const Kernel k = makeStreamKernel();
    InvocationProfile p;
    p.record(k, {}, {1024, 1024}, true);
    AnalysisOptions ao;
    ao.profile = &p;
    const auto facts = verify::analyzePlan(compileKernel(k), ao);
    EXPECT_EQ(facts.purity.cls, PurityClass::Idempotent);
    EXPECT_FALSE(facts.purity.memoizable);
}

// --- Interference analysis. ---

TEST(AnalysisInterference, ConnectedPartitionsShareOneComponent)
{
    const auto facts = verify::analyzePlan(compileKernel(makeStreamKernel()));
    const auto &f = facts.interference;
    EXPECT_EQ(f.numPartitions, 2);
    EXPECT_EQ(f.components, 1);
    EXPECT_TRUE(f.mayInteract(0, 1));
    EXPECT_TRUE(f.mayInteract(1, 0));
    EXPECT_FALSE(f.lookaheadUnbounded);
    // One hop (2 cycles) plus one 8-byte flit on a 16-byte link, at
    // the 2GHz NoC clock: 3 cycles of 500 ticks.
    EXPECT_EQ(f.lookaheadTicks, 1500u);
}

TEST(AnalysisInterference, MonolithicPlanIsUnbounded)
{
    CompileOptions co;
    co.partition = false;
    const auto facts =
        verify::analyzePlan(compileKernel(makeStreamKernel(), co));
    const auto &f = facts.interference;
    EXPECT_EQ(f.numPartitions, 1);
    EXPECT_EQ(f.components, 1);
    EXPECT_TRUE(f.lookaheadUnbounded);
    EXPECT_TRUE(f.mayInteract(0, 0)); // reflexive
    EXPECT_TRUE(f.mayInteract(0, 7)); // conservative out of range
}

// --- Framework plumbing. ---

TEST(AnalysisFramework, RegistersAllAnalyses)
{
    std::vector<std::string> names;
    for (const auto &a : verify::analyses())
        names.push_back(a.name);
    EXPECT_EQ(names, (std::vector<std::string>{"bounds", "channels",
                                               "purity",
                                               "interference"}));
}

TEST(AnalysisFramework, FactStoreSerializesAndSummarizes)
{
    const auto facts = verify::analyzePlan(compileKernel(makeStreamKernel()));
    sim::JsonWriter w;
    facts.json(w);
    const std::string json = w.str();
    EXPECT_NE(json.find("\"bounds\""), std::string::npos);
    EXPECT_NE(json.find("\"deadlock_free\":\"proven\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"memoizable\":true"), std::string::npos);
    EXPECT_NE(json.find("\"lookahead_ticks\""), std::string::npos);

    const std::string text = facts.str();
    EXPECT_NE(text.find("purity:"), std::string::npos) << text;
    EXPECT_NE(text.find("bounds:"), std::string::npos) << text;
}
