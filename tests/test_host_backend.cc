/**
 * @file
 * Tests for the functional memory backend (typed element storage the
 * whole suite's validation rests on) and the analytical OoO host
 * executor (issue bounds, memory-port bounds, recurrence floors,
 * pointer-chase serialization).
 */

#include <gtest/gtest.h>

#include "src/compiler/dfg.hh"
#include "src/driver/system.hh"
#include "src/engine/backend.hh"
#include "src/engine/host_exec.hh"

using namespace distda;
using compiler::KernelBuilder;
using compiler::Word;
using engine::HostExecutor;
using engine::MemBackend;

TEST(Backend, RoundTripsEveryElementWidth)
{
    MemBackend mem(0x1000, 4096);
    // 8/4/2/1-byte integers, sign extension included.
    for (std::uint32_t bytes : {1u, 2u, 4u, 8u}) {
        Word w;
        w.i = -5;
        mem.store(0x1000, w, bytes, false);
        EXPECT_EQ(mem.load(0x1000, bytes, false).i, -5)
            << bytes << " bytes";
        w.i = 100;
        mem.store(0x1000, w, bytes, false);
        EXPECT_EQ(mem.load(0x1000, bytes, false).i, 100);
    }
    // 4-byte float narrows; 8-byte double is exact.
    Word f;
    f.f = 1.0 / 3.0;
    mem.store(0x1100, f, 8, true);
    EXPECT_EQ(mem.load(0x1100, 8, true).f, 1.0 / 3.0);
    mem.store(0x1108, f, 4, true);
    EXPECT_EQ(mem.load(0x1108, 4, true).f,
              static_cast<double>(static_cast<float>(1.0 / 3.0)));
}

TEST(Backend, NarrowIntegersTruncate)
{
    MemBackend mem(0, 64);
    Word w;
    w.i = 0x1FF;
    mem.store(0, w, 1, false);
    EXPECT_EQ(mem.load(0, 1, false).i, -1); // 0xFF sign-extended
}

TEST(Backend, OutOfArenaPanics)
{
    MemBackend mem(0x1000, 64);
    Word w{};
    EXPECT_DEATH(mem.store(0x0800, w, 8, false), "outside");
    EXPECT_DEATH((void)mem.load(0x1000 + 60, 8, false), "outside");
}

TEST(ArrayRef, TypedViews)
{
    MemBackend mem(0x2000, 4096);
    engine::ArrayRef arr;
    arr.base = 0x2000;
    arr.count = 16;
    arr.elemBytes = 4;
    arr.isFloat = false;
    arr.mem = &mem;
    arr.setI(3, -17);
    EXPECT_EQ(arr.getI(3), -17);
    EXPECT_EQ(arr.addrOf(3), 0x2000u + 12);
    EXPECT_EQ(arr.sizeBytes(), 64u);
}

namespace
{

/** Streaming kernel: out[i] = a[i] + b[i]. */
compiler::Kernel
streamKernel(std::int64_t trip)
{
    KernelBuilder kb("hx_stream");
    const int a = kb.object("A", 4096, 8, true);
    const int b = kb.object("B", 4096, 8, true);
    const int c = kb.object("C", 4096, 8, true);
    kb.loopStatic(trip);
    kb.store(c, kb.affine(0, 1),
             kb.fadd(kb.load(a, kb.affine(0, 1)),
                     kb.load(b, kb.affine(0, 1))));
    return kb.build();
}

/** FP reduction kernel with a 2-op carried chain. */
compiler::Kernel
reduceKernel(std::int64_t trip)
{
    KernelBuilder kb("hx_reduce");
    const int a = kb.object("A", 4096, 8, true);
    kb.loopStatic(trip);
    auto s = kb.carry(Word{.f = 0.0}, true);
    kb.setCarry(
        s, kb.fadd(s, kb.fmul(kb.load(a, kb.affine(0, 1)),
                              kb.constFloat(2.0))));
    kb.markResult(s);
    return kb.build();
}

struct HostRun
{
    double nsPerIter;
    engine::HostRunResult res;
};

HostRun
runOnHost(const compiler::Kernel &kernel, std::int64_t trip)
{
    driver::SystemParams sp;
    driver::System sys(sp);
    std::vector<engine::ArrayRef> arrays;
    for (const auto &obj : kernel.objects) {
        auto arr = sys.alloc(obj.name, obj.elemCount, obj.elemBytes,
                             obj.isFloat);
        for (std::uint64_t i = 0; i < arr.count; ++i)
            arr.setF(i, 1.0);
        arrays.push_back(arr);
    }
    HostExecutor exec(kernel, &sys.hier(), &sys.backend(),
                      &sys.acct());
    HostRun r;
    r.res = exec.run(arrays, {}, 0);
    r.nsPerIter = static_cast<double>(r.res.endTick) / 1000.0 /
                  static_cast<double>(trip);
    return r;
}

} // namespace

TEST(HostExec, IssueWidthBoundsThroughput)
{
    const auto run = runOnHost(streamKernel(2048), 2048);
    // 3 accesses + 1 add + 4 overhead = 8 ops at sustained IPC 1.2
    // (~6.7 cycles = 3.3ns), plus memory-port and stall terms.
    EXPECT_GT(run.nsPerIter, 3.0);
    EXPECT_LT(run.nsPerIter, 8.0);
    EXPECT_DOUBLE_EQ(run.res.memOps, 3.0 * 2048);
}

TEST(HostExec, RecurrenceFloorsIterationTime)
{
    // fadd+fmul carried chain: >= 6 cycles = 3ns per iteration even
    // though the op count alone would allow less.
    const auto run = runOnHost(reduceKernel(2048), 2048);
    EXPECT_GE(run.nsPerIter, 2.9);
    ASSERT_EQ(run.res.results.size(), 1u);
    EXPECT_DOUBLE_EQ(run.res.results[0].second.f, 2.0 * 2048);
}

TEST(HostExec, PointerChaseSerializesOnMemory)
{
    KernelBuilder kb("hx_chase");
    const std::uint64_t n = 1 << 16; // 512KB, far beyond L1/L2
    const int next = kb.object("next", n, 8, false);
    kb.loopStatic(512);
    auto p = kb.carry(Word{0}, false);
    kb.setCarry(p, kb.loadIdx(next, p));
    kb.markResult(p);
    const auto kernel = kb.build();

    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr = sys.alloc("next", n, 8, false);
    // A full-cycle permutation with large jumps: every hop leaves the
    // private caches.
    for (std::uint64_t i = 0; i < n; ++i)
        arr.setI(i, static_cast<std::int64_t>((i + 8191) % n));
    HostExecutor exec(kernel, &sys.hier(), &sys.backend(),
                      &sys.acct());
    const auto res = exec.run({arr}, {}, 0);
    // Every iteration pays a full dependent memory latency: far above
    // the issue bound of ~5 cycles.
    EXPECT_GT(static_cast<double>(res.endTick) / 512.0, 5000.0);
}

TEST(HostExec, ChargesOooEnergyPerInstruction)
{
    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr = sys.alloc("A", 4096, 8, true);
    const auto kernel = reduceKernel(256);
    HostExecutor exec(kernel, &sys.hier(), &sys.backend(),
                      &sys.acct());
    exec.run({arr}, {}, 0);
    EXPECT_GT(sys.acct().componentPj(energy::Component::OoOCore), 0.0);
    EXPECT_DOUBLE_EQ(sys.acct().componentPj(energy::Component::IOCore),
                     0.0);
}

TEST(HostExec, ParamExtentControlsTrip)
{
    KernelBuilder kb("hx_param");
    const int a = kb.object("A", 4096, 8, true);
    const int pt = kb.param("trip");
    kb.loopFromParam(pt);
    auto s = kb.carry(Word{.f = 0.0}, true);
    kb.setCarry(s, kb.fadd(s, kb.load(a, kb.affine(0, 1))));
    kb.markResult(s);
    const auto kernel = kb.build();

    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr = sys.alloc("A", 4096, 8, true);
    for (std::uint64_t i = 0; i < arr.count; ++i)
        arr.setF(i, 1.0);
    HostExecutor exec(kernel, &sys.hier(), &sys.backend(),
                      &sys.acct());
    Word t;
    t.i = 77;
    const auto res = exec.run({arr}, {t}, 0);
    EXPECT_DOUBLE_EQ(res.results[0].second.f, 77.0);
}
