/**
 * @file
 * Plan artifact and PlanCache tests: exact serialize→parse→serialize
 * round trips across every paper workload and both accelerator
 * families, fingerprint stability and collision sanity, structural
 * validation of corrupted artifacts, file save/load, cache hit/miss
 * accounting, and cached-vs-fresh execution metric equality (the
 * correctness bar for the compile→execute split).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/compiler/plan_cache.hh"
#include "src/compiler/plan_io.hh"
#include "src/driver/runner.hh"
#include "src/driver/system.hh"
#include "src/sim/logging.hh"
#include "src/workloads/workload.hh"

using namespace distda;
using compiler::CompileOptions;
using compiler::Kernel;
using compiler::OffloadPlan;
using compiler::PlanCache;
using driver::ArchModel;

namespace
{

/** Every kernel of every paper workload, compiled under @p model. */
std::vector<OffloadPlan>
compileAllKernels(ArchModel model)
{
    std::vector<OffloadPlan> plans;
    for (const std::string &name : workloads::workloadNames()) {
        auto wl = workloads::makeWorkload(name, 0.25);
        driver::SystemParams sp;
        sp.arenaBytes = wl->arenaBytes();
        driver::RunConfig cfg;
        cfg.model = model;
        sp.allocAffinity = cfg.allocAffinity();
        driver::System sys(sp);
        wl->setup(sys);
        for (const Kernel *k : wl->kernels())
            plans.push_back(
                compiler::compileKernel(*k, cfg.compileOptions()));
    }
    return plans;
}

/** One representative compiled plan for corruption/file tests. */
OffloadPlan
samplePlan()
{
    auto wl = workloads::makeWorkload("fdt", 0.25);
    driver::SystemParams sp;
    sp.arenaBytes = wl->arenaBytes();
    driver::RunConfig cfg;
    cfg.model = ArchModel::DistDA_IO;
    sp.allocAffinity = cfg.allocAffinity();
    driver::System sys(sp);
    wl->setup(sys);
    return compiler::compileKernel(*wl->kernels().front(),
                                   cfg.compileOptions());
}

/** Fields that must be identical between cached and fresh runs. */
const std::vector<std::pair<const char *, double driver::Metrics::*>> &
comparableMetricFields()
{
    using M = driver::Metrics;
    static const std::vector<
        std::pair<const char *, double M::*>>
        fields = {
            {"timeNs", &M::timeNs},
            {"hostInsts", &M::hostInsts},
            {"accelInsts", &M::accelInsts},
            {"kernelMemOps", &M::kernelMemOps},
            {"hostMemOps", &M::hostMemOps},
            {"mmioOps", &M::mmioOps},
            {"cacheAccesses", &M::cacheAccesses},
            {"dataMovementBytes", &M::dataMovementBytes},
            {"totalEnergyPj", &M::totalEnergyPj},
            {"nocCtrlBytes", &M::nocCtrlBytes},
            {"nocDataBytes", &M::nocDataBytes},
            {"intraBytes", &M::intraBytes},
            {"daBytes", &M::daBytes},
            {"aaBytes", &M::aaBytes},
        };
    return fields;
}

} // namespace

TEST(PlanIo, RoundTripIsByteIdenticalAcrossWorkloadsAndModels)
{
    for (ArchModel model :
         {ArchModel::MonoDA_IO, ArchModel::DistDA_IO}) {
        for (const OffloadPlan &plan : compileAllKernels(model)) {
            const std::string text = compiler::serializePlan(plan);
            const OffloadPlan back = compiler::parsePlan(text);
            EXPECT_EQ(compiler::serializePlan(back), text)
                << "kernel " << plan.kernel.name << " under model "
                << driver::archModelName(model);
            EXPECT_EQ(compiler::validatePlanArtifact(back), "");
        }
    }
}

TEST(PlanIo, FingerprintIsStableAndRecordedInThePlan)
{
    const OffloadPlan a = samplePlan();
    const OffloadPlan b = samplePlan();
    ASSERT_EQ(a.fingerprint.size(), 16u);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.fingerprint,
              compiler::planFingerprint(a.kernel, a.options));
}

TEST(PlanIo, FingerprintSeparatesKernelsAndOptions)
{
    // Distinct (kernel, options) pairs must not collide across the
    // whole suite — the cache key and artifact name depend on it.
    std::set<std::string> fps;
    std::size_t plans = 0;
    for (ArchModel model :
         {ArchModel::MonoDA_IO, ArchModel::DistDA_IO}) {
        for (const OffloadPlan &plan : compileAllKernels(model)) {
            fps.insert(plan.fingerprint);
            ++plans;
        }
    }
    EXPECT_EQ(fps.size(), plans);

    // Every CompileOptions knob participates in the fingerprint.
    const OffloadPlan base = samplePlan();
    CompileOptions opts = base.options;
    opts.channelCapacity += 1;
    EXPECT_NE(compiler::planFingerprint(base.kernel, opts),
              base.fingerprint);
    opts = base.options;
    opts.bufferBytes *= 2;
    EXPECT_NE(compiler::planFingerprint(base.kernel, opts),
              base.fingerprint);
}

TEST(PlanIo, ParseRejectsTruncatedAndMangledArtifacts)
{
    const std::string text = compiler::serializePlan(samplePlan());

    auto parse_fails = [](const std::string &t) {
        try {
            ScopedFailureCapture capture;
            compiler::parsePlan(t);
        } catch (const SimFailure &) {
            return true;
        }
        return false;
    };

    EXPECT_TRUE(parse_fails(""));
    EXPECT_TRUE(parse_fails("not a plan\n"));
    // Drop the trailing "end\n": truncation must not parse.
    EXPECT_TRUE(parse_fails(text.substr(0, text.size() - 4)));
    EXPECT_TRUE(parse_fails(text.substr(0, text.size() / 2)));
    // Unknown trailing token after a complete document.
    EXPECT_TRUE(parse_fails(text + "garbage\n"));
}

TEST(PlanIo, ValidatorFlagsCorruptedFields)
{
    const OffloadPlan plan = samplePlan();
    const std::string text = compiler::serializePlan(plan);

    auto corrupt = [&](const std::string &from, const std::string &to) {
        std::string t = text;
        const std::size_t pos = t.find(from);
        EXPECT_NE(pos, std::string::npos) << from;
        t.replace(pos, from.size(), to);
        return compiler::validatePlanArtifact(compiler::parsePlan(t));
    };

    // Tampered fingerprint: recompute must disagree.
    const std::string fp_line = "fingerprint " + plan.fingerprint;
    const std::string flipped =
        "fingerprint " +
        std::string(plan.fingerprint[0] == '0' ? "1" : "0") +
        plan.fingerprint.substr(1);
    EXPECT_NE(corrupt(fp_line, flipped), "");

    // Characteristics out of sync with the partition list.
    const std::string chars = "chars " + std::to_string(static_cast<
        long long>(plan.characteristics.numPartitions));
    const std::string wrong = "chars " + std::to_string(static_cast<
        long long>(plan.characteristics.numPartitions + 1));
    EXPECT_NE(corrupt(chars, wrong), "");

    // The untouched artifact stays clean.
    EXPECT_EQ(compiler::validatePlanArtifact(compiler::parsePlan(text)),
              "");
}

TEST(PlanIo, SaveAndLoadRoundTripThroughAFile)
{
    const OffloadPlan plan = samplePlan();
    const std::string path =
        ::testing::TempDir() + "/" +
        compiler::planArtifactFile(plan.kernel.name, plan.fingerprint);
    compiler::savePlan(plan, path);
    const OffloadPlan back = compiler::loadPlan(path);
    EXPECT_EQ(compiler::serializePlan(back),
              compiler::serializePlan(plan));
    EXPECT_EQ(back.fingerprint, plan.fingerprint);
    std::remove(path.c_str());
}

TEST(PlanIo, ArtifactFileNameSanitizesHostileKernelNames)
{
    EXPECT_EQ(compiler::planArtifactFile("a b/c", "0123456789abcdef"),
              "a_b-c-0123456789abcdef.plan");
}

TEST(PlanCacheTest, HitsAndMissesAreCounted)
{
    PlanCache cache;
    const OffloadPlan sample = samplePlan();

    const PlanCache::Lookup miss =
        cache.getOrCompile(sample.kernel, sample.options);
    ASSERT_NE(miss.plan, nullptr);
    EXPECT_FALSE(miss.hit);
    EXPECT_GE(miss.compileMs, 0.0);

    const PlanCache::Lookup hit =
        cache.getOrCompile(sample.kernel, sample.options);
    ASSERT_NE(hit.plan, nullptr);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.plan.get(), miss.plan.get()); // shared instance
    EXPECT_EQ(hit.compileMs, 0.0);

    const PlanCache::Stats st = cache.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.entries, 1u);
    EXPECT_EQ(st.savedMs, miss.compileMs);

    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(PlanCacheTest, DisabledCacheCompilesFreshEveryTime)
{
    PlanCache cache;
    cache.setEnabled(false);
    const OffloadPlan sample = samplePlan();
    const PlanCache::Lookup a =
        cache.getOrCompile(sample.kernel, sample.options);
    const PlanCache::Lookup b =
        cache.getOrCompile(sample.kernel, sample.options);
    EXPECT_FALSE(a.hit);
    EXPECT_FALSE(b.hit);
    EXPECT_NE(a.plan.get(), b.plan.get());
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(PlanCacheTest, InsertedPlansAreFoundByFingerprint)
{
    PlanCache cache;
    auto plan = std::make_shared<const OffloadPlan>(samplePlan());
    cache.insert(plan);
    EXPECT_EQ(cache.find(plan->fingerprint).get(), plan.get());
    EXPECT_EQ(cache.find("ffffffffffffffff"), nullptr);

    // A subsequent lookup of the same (kernel, options) is a hit on
    // the inserted instance — no recompilation.
    const PlanCache::Lookup hit =
        cache.getOrCompile(plan->kernel, plan->options);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.plan.get(), plan.get());
}

TEST(PlanCacheTest, CachedAndFreshRunsProduceIdenticalMetrics)
{
    driver::RunOptions opts;
    opts.scale = 0.25;

    driver::RunConfig cached;
    cached.model = ArchModel::DistDA_IO;
    cached.planCache = true;
    driver::RunConfig fresh = cached;
    fresh.planCache = false;

    PlanCache::process().clear();
    const driver::Metrics warm =
        driver::runWorkload("sei", cached, opts);
    const driver::Metrics hit =
        driver::runWorkload("sei", cached, opts);
    const driver::Metrics cold =
        driver::runWorkload("sei", fresh, opts);

    // The second cached run hits for every kernel the first compiled;
    // the uncached run never consults the cache.
    EXPECT_GT(warm.planCacheMisses, 0.0);
    EXPECT_EQ(warm.planCacheHits, 0.0);
    EXPECT_GT(hit.planCacheHits, 0.0);
    EXPECT_EQ(hit.planCacheMisses, 0.0);
    EXPECT_GT(hit.planCompileMsSaved, 0.0);
    EXPECT_EQ(cold.planCacheHits, 0.0);
    EXPECT_GT(cold.planCacheMisses, 0.0);

    for (const auto &[name, field] : comparableMetricFields()) {
        EXPECT_EQ(warm.*field, hit.*field) << name;
        EXPECT_EQ(warm.*field, cold.*field) << name;
    }
    PlanCache::process().clear();
}

TEST(PlanCacheTest, RoundTrippedPlansRunIdentically)
{
    driver::RunOptions opts;
    opts.scale = 0.25;
    driver::RunConfig direct;
    direct.model = ArchModel::DistDA_IO;
    driver::RunConfig replan = direct;
    replan.planRoundTrip = true;

    PlanCache::process().clear();
    const driver::Metrics a = driver::runWorkload("nw", direct, opts);
    const driver::Metrics b = driver::runWorkload("nw", replan, opts);
    for (const auto &[name, field] : comparableMetricFields())
        EXPECT_EQ(a.*field, b.*field) << name;
    PlanCache::process().clear();
}
