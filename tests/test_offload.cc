/**
 * @file
 * Unit tests for the Table II interface layer: MMIO accounting, the
 * hardware scheduler's buffer allocation table and Fig 2d combining
 * rule, posted-vs-synchronous intrinsic latency, and the runtime's
 * per-invocation orchestration (allocation once, parameters and run
 * per invocation, done token, result read-back).
 */

#include <gtest/gtest.h>

#include "death_helpers.hh"

#include "src/driver/context.hh"
#include "src/driver/system.hh"
#include "src/offload/interface.hh"
#include "src/offload/lifecycle.hh"
#include "src/offload/runtime.hh"

using namespace distda;
using compiler::KernelBuilder;
using compiler::Word;
using offload::AccelScheduler;
using offload::CoprocessorInterface;

TEST(Scheduler, StreamAllocationPopulatesTable)
{
    AccelScheduler sched;
    const int buf = sched.allocStream(7, 2, 0x1000, 8, 4096, 4096);
    EXPECT_EQ(sched.bufOf(7), buf);
    EXPECT_EQ(sched.table().at(buf).cluster, 2);
    EXPECT_EQ(sched.liveBuffers(), 1u);
}

TEST(Scheduler, CombinesOverlappingStrides)
{
    // Fig 2d case 1: same stride, distance within the buffer window.
    AccelScheduler sched;
    const int b1 = sched.allocStream(0, 1, 0x1000, 8, 65536, 4096);
    const int b2 = sched.allocStream(1, 1, 0x1010, 8, 65536, 4096);
    EXPECT_EQ(b1, b2);
    EXPECT_EQ(sched.liveBuffers(), 1u);
}

TEST(Scheduler, DistributesDistantAccesses)
{
    // Fig 2d case 2: distance exceeds the buffer overflow limit.
    AccelScheduler sched;
    const int b1 = sched.allocStream(0, 1, 0x1000, 8, 65536, 4096);
    const int b2 =
        sched.allocStream(1, 1, 0x1000 + 64 * 1024, 8, 65536, 4096);
    EXPECT_NE(b1, b2);
}

TEST(Scheduler, NoCombiningAcrossClustersOrStrides)
{
    AccelScheduler sched;
    const int b1 = sched.allocStream(0, 1, 0x1000, 8, 65536, 4096);
    const int b2 = sched.allocStream(1, 2, 0x1008, 8, 65536, 4096);
    const int b3 = sched.allocStream(2, 1, 0x1008, 16, 65536, 4096);
    EXPECT_NE(b1, b2);
    EXPECT_NE(b1, b3);
}

TEST(Scheduler, FreeRemovesMappings)
{
    AccelScheduler sched;
    const int buf = sched.allocStream(0, 1, 0x1000, 8, 65536, 4096);
    sched.free(buf);
    EXPECT_EQ(sched.bufOf(0), -1);
    EXPECT_EQ(sched.liveBuffers(), 0u);
    EXPECT_DEATH(sched.free(buf), "unknown");
}

TEST(Scheduler, CombineRuleBoundary)
{
    EXPECT_TRUE(AccelScheduler::shouldCombine(0, 4096));
    EXPECT_TRUE(AccelScheduler::shouldCombine(4096 - 64, 4096));
    EXPECT_FALSE(AccelScheduler::shouldCombine(4096, 4096));
    EXPECT_FALSE(AccelScheduler::shouldCombine(-1, 4096));
}

TEST(Interface, MmioOpsAndEnergyCounted)
{
    energy::Accountant acct;
    mem::Hierarchy hier(mem::HierarchyParams{}, &acct);
    CoprocessorInterface iface(&hier, &acct);
    sim::Tick t = 0;
    t = iface.cpConfig(3, 128, t);
    t = iface.cpSetRf(3, 0, Word{}, t);
    t = iface.cpRun(3, t);
    EXPECT_DOUBLE_EQ(iface.mmioOps(), 3.0);
    EXPECT_DOUBLE_EQ(acct.componentPj(energy::Component::Mmio),
                     3.0 * acct.params().mmioPj);
    EXPECT_DOUBLE_EQ(iface.configBytes(), 128.0);
}

TEST(Interface, PostedWritesAreCheapSyncOpsWait)
{
    energy::Accountant acct;
    mem::Hierarchy hier(mem::HierarchyParams{}, &acct);
    CoprocessorInterface iface(&hier, &acct);
    const sim::Tick posted = iface.cpSetRf(7, 0, Word{}, 0);
    EXPECT_EQ(posted, 500u); // one host issue cycle
    const sim::Tick sync = iface.cpRun(7, 1000000);
    EXPECT_GT(sync - 1000000, 500u); // round trip over the NoC
}

TEST(Interface, ConfigTrafficRidesCtrlClass)
{
    energy::Accountant acct;
    mem::Hierarchy hier(mem::HierarchyParams{}, &acct);
    CoprocessorInterface iface(&hier, &acct);
    iface.cpConfig(5, 256, 0);
    EXPECT_GT(hier.mesh().bytesInClass(noc::TrafficClass::Ctrl),
              256.0);
    EXPECT_DOUBLE_EQ(hier.mesh().bytesInClass(noc::TrafficClass::Data),
                     0.0);
}

namespace
{

compiler::Kernel
makeTinyKernel()
{
    KernelBuilder kb("tiny");
    const int a = kb.object("A", 512, 8, true);
    const int b = kb.object("B", 512, 8, true);
    const int ps = kb.param("s");
    kb.loopStatic(256);
    kb.store(b, kb.affine(0, 1),
             kb.fmul(kb.paramValue(ps), kb.load(a, kb.affine(0, 1))));
    return kb.build();
}

} // namespace

TEST(Runtime, AllocatesOnceParamsEveryInvocation)
{
    setInformEnabled(false);
    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr_a = sys.alloc("A", 512, 8, true);
    auto arr_b = sys.alloc("B", 512, 8, true);
    for (std::uint64_t i = 0; i < 512; ++i)
        arr_a.setF(i, 1.0);

    const auto plan = compiler::compileKernel(makeTinyKernel());
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    offload::OffloadRuntime rt(plan, cfg.engineConfig(), &sys.hier(),
                               &sys.backend(), &sys.acct());

    auto r1 = rt.invoke({arr_a, arr_b},
                        {driver::ExecContext::wf(2.0)}, 0);
    const double after_first = rt.mmioOps();
    auto r2 = rt.invoke({arr_a, arr_b}, {driver::ExecContext::wf(3.0)},
                        r1.endTick);
    const double per_invoke = rt.mmioOps() - after_first;
    // The first invocation also pays cp_config / cp_config_stream.
    EXPECT_GT(after_first, per_invoke);
    EXPECT_GT(per_invoke, 0.0);
    EXPECT_GT(r2.endTick, r1.endTick);
    EXPECT_EQ(arr_b.getF(0), 3.0);
}

TEST(Runtime, ReleaseForcesReallocation)
{
    setInformEnabled(false);
    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr_a = sys.alloc("A", 512, 8, true);
    auto arr_b = sys.alloc("B", 512, 8, true);

    const auto plan = compiler::compileKernel(makeTinyKernel());
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    offload::OffloadRuntime rt(plan, cfg.engineConfig(), &sys.hier(),
                               &sys.backend(), &sys.acct());
    auto r1 = rt.invoke({arr_a, arr_b},
                        {driver::ExecContext::wf(1.0)}, 0);
    const double first = rt.mmioOps();
    rt.invoke({arr_a, arr_b}, {driver::ExecContext::wf(1.0)},
              r1.endTick);
    const double steady = rt.mmioOps() - first;
    rt.release();
    const double before = rt.mmioOps();
    rt.invoke({arr_a, arr_b}, {driver::ExecContext::wf(1.0)},
              r1.endTick * 3);
    EXPECT_GT(rt.mmioOps() - before, steady);
}

TEST(Runtime, ResultCarriesReadBack)
{
    setInformEnabled(false);
    KernelBuilder kb("dotk");
    const int a = kb.object("A", 256, 8, true);
    kb.loopStatic(256);
    auto sum = kb.carry(Word{.f = 0.0}, true);
    kb.setCarry(sum, kb.fadd(sum, kb.load(a, kb.affine(0, 1))));
    kb.markResult(sum);
    const auto plan = compiler::compileKernel(kb.build());

    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr = sys.alloc("A", 256, 8, true);
    for (std::uint64_t i = 0; i < 256; ++i)
        arr.setF(i, 0.5);
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    offload::OffloadRuntime rt(plan, cfg.engineConfig(), &sys.hier(),
                               &sys.backend(), &sys.acct());
    auto res = rt.invoke({arr}, {}, 0);
    ASSERT_EQ(res.results.size(), 1u);
    EXPECT_DOUBLE_EQ(res.results[0].second.f, 128.0);
}

TEST(Lifecycle, RecordConservationInvariant)
{
    offload::OffloadRecord rec;
    rec.start = 1000;
    rec.end = 1000;
    EXPECT_TRUE(rec.conserved()); // zero-length, zero phases

    rec.end = 1600;
    rec.add(offload::Phase::Enqueue, 100);
    rec.add(offload::Phase::Execute, 400);
    EXPECT_FALSE(rec.conserved()); // 100 ticks unaccounted
    rec.add(offload::Phase::Writeback, 100);
    EXPECT_TRUE(rec.conserved());
    EXPECT_EQ(rec.endToEnd(), 600u);
    EXPECT_EQ(rec.phaseSum(), 600u);
    EXPECT_EQ(rec.ticksIn(offload::Phase::Execute), 400u);

    // end < start is never conserved.
    offload::OffloadRecord bad;
    bad.start = 10;
    bad.end = 5;
    EXPECT_FALSE(bad.conserved());

    // A negative-delta bug wraps the unsigned phase duration to a
    // huge value; the per-phase bound must catch it even when a
    // second wrap makes the *sum* come out right again.
    offload::OffloadRecord wrap;
    wrap.start = 0;
    wrap.end = 100;
    wrap.add(offload::Phase::Enqueue,
             static_cast<sim::Tick>(0) - 50); // -50 wrapped
    wrap.add(offload::Phase::Execute, 150);
    EXPECT_EQ(wrap.phaseSum(), 100u); // sum wrapped back to "correct"
    EXPECT_FALSE(wrap.conserved());
}

TEST(Lifecycle, StatsAggregateRecords)
{
    offload::LifecycleStats ls;
    EXPECT_DOUBLE_EQ(ls.invocations(), 0.0);

    offload::OffloadRecord rec;
    rec.start = 0;
    rec.end = 1000;
    rec.add(offload::Phase::Dispatch, 250);
    rec.add(offload::Phase::Execute, 750);
    ls.add(rec);
    ls.add(rec);

    EXPECT_DOUBLE_EQ(ls.invocations(), 2.0);
    EXPECT_DOUBLE_EQ(ls.phaseTicks(offload::Phase::Dispatch), 500.0);
    EXPECT_DOUBLE_EQ(ls.phaseTicks(offload::Phase::Execute), 1500.0);
    EXPECT_DOUBLE_EQ(ls.phaseTicks(offload::Phase::Enqueue), 0.0);
    EXPECT_DOUBLE_EQ(ls.e2eTicks(), 2000.0);
    EXPECT_DOUBLE_EQ(ls.e2eDist().p50(), 1000.0);

    ls.reset();
    EXPECT_DOUBLE_EQ(ls.invocations(), 0.0);
    EXPECT_DOUBLE_EQ(ls.e2eTicks(), 0.0);
}

TEST(Lifecycle, StatsRejectUnconservedRecord)
{
    offload::LifecycleStats ls;
    offload::OffloadRecord rec;
    rec.start = 0;
    rec.end = 100;
    rec.add(offload::Phase::Execute, 99); // one tick unaccounted
    EXPECT_PANIC(ls.add(rec), "conservation");
}

TEST(Runtime, LifecycleRecordsCoverEveryPhaseAndConserve)
{
    setInformEnabled(false);
    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr_a = sys.alloc("A", 512, 8, true);
    auto arr_b = sys.alloc("B", 512, 8, true);

    const auto plan = compiler::compileKernel(makeTinyKernel());
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    offload::OffloadRuntime rt(plan, cfg.engineConfig(), &sys.hier(),
                               &sys.backend(), &sys.acct());

    auto r1 = rt.invoke({arr_a, arr_b},
                        {driver::ExecContext::wf(2.0)}, 0);
    const offload::OffloadRecord &rec1 = r1.record;
    EXPECT_TRUE(rec1.conserved());
    EXPECT_EQ(rec1.start, 0u);
    EXPECT_EQ(rec1.end, r1.endTick);
    // First invocation pays descriptor decode and buffer allocation
    // on top of the per-invocation phases.
    EXPECT_GT(rec1.ticksIn(offload::Phase::Decode), 0u);
    EXPECT_GT(rec1.ticksIn(offload::Phase::BufferAlloc), 0u);
    EXPECT_GT(rec1.ticksIn(offload::Phase::Enqueue), 0u);
    EXPECT_GT(rec1.ticksIn(offload::Phase::Execute), 0u);

    auto r2 = rt.invoke({arr_a, arr_b}, {driver::ExecContext::wf(3.0)},
                        r1.endTick);
    const offload::OffloadRecord &rec2 = r2.record;
    EXPECT_TRUE(rec2.conserved());
    EXPECT_EQ(rec2.start, r1.endTick);
    // Retained allocation: no decode, no buffer allocation.
    EXPECT_EQ(rec2.ticksIn(offload::Phase::Decode), 0u);
    EXPECT_EQ(rec2.ticksIn(offload::Phase::BufferAlloc), 0u);
    EXPECT_GT(rec2.ticksIn(offload::Phase::Execute), 0u);
    EXPECT_LT(rec2.endToEnd(), rec1.endToEnd());
}

TEST(Runtime, LifecycleCompletePhaseCoversResultReadback)
{
    setInformEnabled(false);
    KernelBuilder kb("dotk");
    const int a = kb.object("A", 256, 8, true);
    kb.loopStatic(256);
    auto sum = kb.carry(Word{.f = 0.0}, true);
    kb.setCarry(sum, kb.fadd(sum, kb.load(a, kb.affine(0, 1))));
    kb.markResult(sum);
    const auto plan = compiler::compileKernel(kb.build());

    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr = sys.alloc("A", 256, 8, true);
    for (int i = 0; i < 256; ++i)
        arr.setF(i, 0.5);
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    offload::OffloadRuntime rt(plan, cfg.engineConfig(), &sys.hier(),
                               &sys.backend(), &sys.acct());
    auto res = rt.invoke({arr}, {}, 0);
    EXPECT_TRUE(res.record.conserved());
    // The sync phases (Dispatch, Complete) and the done-token wait
    // (Writeback) can legitimately be zero here: a partition placed
    // on the host's own cluster pays no NoC hops. Their nonzero
    // attribution is covered by Interface.SyncIntrinsicsAttribute...
    // below, which targets a far cluster explicitly.
    EXPECT_GT(res.record.endToEnd(), 0u);
}

TEST(Interface, SyncIntrinsicsAttributePhasesAtDistance)
{
    setInformEnabled(false);
    driver::SystemParams sp;
    driver::System sys(sp);
    CoprocessorInterface iface(&sys.hier(), &sys.acct());

    // Pick the cluster farthest from the host so every synchronous
    // MMIO pays NoC hops in both directions.
    const auto &mesh = sys.hier().mesh();
    const int host = mesh.hostNode();
    int far = host;
    for (int n = 0; n < mesh.numNodes(); ++n) {
        if (mesh.hops(host, n) > mesh.hops(host, far))
            far = n;
    }
    ASSERT_GT(mesh.hops(host, far), 0);

    offload::OffloadRecord rec;
    rec.start = 0;
    iface.setRecord(&rec);
    sim::Tick t = 0;
    t = iface.cpRun(far, t);
    EXPECT_GT(rec.ticksIn(offload::Phase::Dispatch), 0u);
    t = iface.cpLoadRf(far, 0, t);
    EXPECT_GT(rec.ticksIn(offload::Phase::Complete), 0u);
    // Posted writes cost one host cycle regardless of distance.
    const sim::Tick before = t;
    t = iface.cpSetRf(far, 0, Word{.f = 1.0}, t);
    EXPECT_EQ(t - before, 500u);
    EXPECT_EQ(rec.ticksIn(offload::Phase::Enqueue), 500u);
    iface.setRecord(nullptr);

    // Every intrinsic delta telescopes over the same timeline.
    rec.end = t;
    EXPECT_TRUE(rec.conserved());
}
