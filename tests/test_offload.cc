/**
 * @file
 * Unit tests for the Table II interface layer: MMIO accounting, the
 * hardware scheduler's buffer allocation table and Fig 2d combining
 * rule, posted-vs-synchronous intrinsic latency, and the runtime's
 * per-invocation orchestration (allocation once, parameters and run
 * per invocation, done token, result read-back).
 */

#include <gtest/gtest.h>

#include "src/driver/context.hh"
#include "src/driver/system.hh"
#include "src/offload/interface.hh"
#include "src/offload/runtime.hh"

using namespace distda;
using compiler::KernelBuilder;
using compiler::Word;
using offload::AccelScheduler;
using offload::CoprocessorInterface;

TEST(Scheduler, StreamAllocationPopulatesTable)
{
    AccelScheduler sched;
    const int buf = sched.allocStream(7, 2, 0x1000, 8, 4096, 4096);
    EXPECT_EQ(sched.bufOf(7), buf);
    EXPECT_EQ(sched.table().at(buf).cluster, 2);
    EXPECT_EQ(sched.liveBuffers(), 1u);
}

TEST(Scheduler, CombinesOverlappingStrides)
{
    // Fig 2d case 1: same stride, distance within the buffer window.
    AccelScheduler sched;
    const int b1 = sched.allocStream(0, 1, 0x1000, 8, 65536, 4096);
    const int b2 = sched.allocStream(1, 1, 0x1010, 8, 65536, 4096);
    EXPECT_EQ(b1, b2);
    EXPECT_EQ(sched.liveBuffers(), 1u);
}

TEST(Scheduler, DistributesDistantAccesses)
{
    // Fig 2d case 2: distance exceeds the buffer overflow limit.
    AccelScheduler sched;
    const int b1 = sched.allocStream(0, 1, 0x1000, 8, 65536, 4096);
    const int b2 =
        sched.allocStream(1, 1, 0x1000 + 64 * 1024, 8, 65536, 4096);
    EXPECT_NE(b1, b2);
}

TEST(Scheduler, NoCombiningAcrossClustersOrStrides)
{
    AccelScheduler sched;
    const int b1 = sched.allocStream(0, 1, 0x1000, 8, 65536, 4096);
    const int b2 = sched.allocStream(1, 2, 0x1008, 8, 65536, 4096);
    const int b3 = sched.allocStream(2, 1, 0x1008, 16, 65536, 4096);
    EXPECT_NE(b1, b2);
    EXPECT_NE(b1, b3);
}

TEST(Scheduler, FreeRemovesMappings)
{
    AccelScheduler sched;
    const int buf = sched.allocStream(0, 1, 0x1000, 8, 65536, 4096);
    sched.free(buf);
    EXPECT_EQ(sched.bufOf(0), -1);
    EXPECT_EQ(sched.liveBuffers(), 0u);
    EXPECT_DEATH(sched.free(buf), "unknown");
}

TEST(Scheduler, CombineRuleBoundary)
{
    EXPECT_TRUE(AccelScheduler::shouldCombine(0, 4096));
    EXPECT_TRUE(AccelScheduler::shouldCombine(4096 - 64, 4096));
    EXPECT_FALSE(AccelScheduler::shouldCombine(4096, 4096));
    EXPECT_FALSE(AccelScheduler::shouldCombine(-1, 4096));
}

TEST(Interface, MmioOpsAndEnergyCounted)
{
    energy::Accountant acct;
    mem::Hierarchy hier(mem::HierarchyParams{}, &acct);
    CoprocessorInterface iface(&hier, &acct);
    sim::Tick t = 0;
    t = iface.cpConfig(3, 128, t);
    t = iface.cpSetRf(3, 0, Word{}, t);
    t = iface.cpRun(3, t);
    EXPECT_DOUBLE_EQ(iface.mmioOps(), 3.0);
    EXPECT_DOUBLE_EQ(acct.componentPj(energy::Component::Mmio),
                     3.0 * acct.params().mmioPj);
    EXPECT_DOUBLE_EQ(iface.configBytes(), 128.0);
}

TEST(Interface, PostedWritesAreCheapSyncOpsWait)
{
    energy::Accountant acct;
    mem::Hierarchy hier(mem::HierarchyParams{}, &acct);
    CoprocessorInterface iface(&hier, &acct);
    const sim::Tick posted = iface.cpSetRf(7, 0, Word{}, 0);
    EXPECT_EQ(posted, 500u); // one host issue cycle
    const sim::Tick sync = iface.cpRun(7, 1000000);
    EXPECT_GT(sync - 1000000, 500u); // round trip over the NoC
}

TEST(Interface, ConfigTrafficRidesCtrlClass)
{
    energy::Accountant acct;
    mem::Hierarchy hier(mem::HierarchyParams{}, &acct);
    CoprocessorInterface iface(&hier, &acct);
    iface.cpConfig(5, 256, 0);
    EXPECT_GT(hier.mesh().bytesInClass(noc::TrafficClass::Ctrl),
              256.0);
    EXPECT_DOUBLE_EQ(hier.mesh().bytesInClass(noc::TrafficClass::Data),
                     0.0);
}

namespace
{

compiler::Kernel
makeTinyKernel()
{
    KernelBuilder kb("tiny");
    const int a = kb.object("A", 512, 8, true);
    const int b = kb.object("B", 512, 8, true);
    const int ps = kb.param("s");
    kb.loopStatic(256);
    kb.store(b, kb.affine(0, 1),
             kb.fmul(kb.paramValue(ps), kb.load(a, kb.affine(0, 1))));
    return kb.build();
}

} // namespace

TEST(Runtime, AllocatesOnceParamsEveryInvocation)
{
    setInformEnabled(false);
    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr_a = sys.alloc("A", 512, 8, true);
    auto arr_b = sys.alloc("B", 512, 8, true);
    for (std::uint64_t i = 0; i < 512; ++i)
        arr_a.setF(i, 1.0);

    const auto plan = compiler::compileKernel(makeTinyKernel());
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    offload::OffloadRuntime rt(plan, cfg.engineConfig(), &sys.hier(),
                               &sys.backend(), &sys.acct());

    auto r1 = rt.invoke({arr_a, arr_b},
                        {driver::ExecContext::wf(2.0)}, 0);
    const double after_first = rt.mmioOps();
    auto r2 = rt.invoke({arr_a, arr_b}, {driver::ExecContext::wf(3.0)},
                        r1.endTick);
    const double per_invoke = rt.mmioOps() - after_first;
    // The first invocation also pays cp_config / cp_config_stream.
    EXPECT_GT(after_first, per_invoke);
    EXPECT_GT(per_invoke, 0.0);
    EXPECT_GT(r2.endTick, r1.endTick);
    EXPECT_EQ(arr_b.getF(0), 3.0);
}

TEST(Runtime, ReleaseForcesReallocation)
{
    setInformEnabled(false);
    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr_a = sys.alloc("A", 512, 8, true);
    auto arr_b = sys.alloc("B", 512, 8, true);

    const auto plan = compiler::compileKernel(makeTinyKernel());
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    offload::OffloadRuntime rt(plan, cfg.engineConfig(), &sys.hier(),
                               &sys.backend(), &sys.acct());
    auto r1 = rt.invoke({arr_a, arr_b},
                        {driver::ExecContext::wf(1.0)}, 0);
    const double first = rt.mmioOps();
    rt.invoke({arr_a, arr_b}, {driver::ExecContext::wf(1.0)},
              r1.endTick);
    const double steady = rt.mmioOps() - first;
    rt.release();
    const double before = rt.mmioOps();
    rt.invoke({arr_a, arr_b}, {driver::ExecContext::wf(1.0)},
              r1.endTick * 3);
    EXPECT_GT(rt.mmioOps() - before, steady);
}

TEST(Runtime, ResultCarriesReadBack)
{
    setInformEnabled(false);
    KernelBuilder kb("dotk");
    const int a = kb.object("A", 256, 8, true);
    kb.loopStatic(256);
    auto sum = kb.carry(Word{.f = 0.0}, true);
    kb.setCarry(sum, kb.fadd(sum, kb.load(a, kb.affine(0, 1))));
    kb.markResult(sum);
    const auto plan = compiler::compileKernel(kb.build());

    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr = sys.alloc("A", 256, 8, true);
    for (std::uint64_t i = 0; i < 256; ++i)
        arr.setF(i, 0.5);
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    offload::OffloadRuntime rt(plan, cfg.engineConfig(), &sys.hier(),
                               &sys.backend(), &sys.acct());
    auto res = rt.invoke({arr}, {}, 0);
    ASSERT_EQ(res.results.size(), 1u);
    EXPECT_DOUBLE_EQ(res.results[0].second.f, 128.0);
}
