/**
 * @file
 * Tests for the timeline probe: track/counter/distribution registries,
 * ring-buffer bounds, counter coalescing, Chrome trace-event export,
 * and an end-to-end quick run proving the driver wires the probe
 * through every instrumented subsystem.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/driver/runner.hh"
#include "src/sim/json.hh"
#include "src/sim/probe.hh"

using namespace distda;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

} // namespace

TEST(Probe, TrackAndCounterRegistriesAreIdempotent)
{
    sim::Probe p;
    const int t0 = p.addTrack(0, "part0");
    const int t1 = p.addTrack(1, "part0"); // same name, other cluster
    EXPECT_NE(t0, t1);
    EXPECT_EQ(p.addTrack(0, "part0"), t0);
    EXPECT_EQ(p.numTracks(), 2u);

    const int c0 = p.addCounter(t0, "occupancy");
    EXPECT_EQ(p.addCounter(t0, "occupancy"), c0);
    EXPECT_NE(p.addCounter(t1, "occupancy"), c0);
}

TEST(Probe, SpansAndInstantsAreRecorded)
{
    sim::Probe p;
    const int t = p.addTrack(0, "unit");
    p.span(t, "work", 100, 200);
    p.span(t, "empty", 100, 100); // zero-length: not recorded
    p.instant(t, "mark", 150);
    EXPECT_EQ(p.eventCount(), 2u);
    EXPECT_EQ(p.dropped(), 0u);
}

TEST(Probe, CounterSamplesCoalesce)
{
    sim::Probe::Options opts;
    opts.intervalTicks = 1000;
    sim::Probe p(opts);
    const int c = p.addCounter(p.addTrack(0, "ch"), "occ");
    p.counter(c, 0, 1.0);
    p.counter(c, 10, 2.0);   // < interval after the last kept sample
    p.counter(c, 999, 3.0);  // still inside
    p.counter(c, 1000, 4.0); // kept
    p.counter(c, 1001, 5.0, /*force=*/true);
    EXPECT_EQ(p.eventCount(), 3u);
}

TEST(Probe, RingWrapsAndCountsDrops)
{
    sim::Probe::Options opts;
    opts.capacity = 8;
    sim::Probe p(opts);
    const int t = p.addTrack(0, "unit");
    for (sim::Tick i = 0; i < 20; ++i)
        p.instant(t, "tick", i * 1'000'000); // i µs
    EXPECT_EQ(p.eventCount(), 8u);
    EXPECT_EQ(p.dropped(), 12u);

    // The surviving window is the most recent one, oldest first.
    sim::JsonWriter w;
    p.writeChromeTrace(w);
    const std::string &json = w.str();
    EXPECT_NE(json.find("\"droppedEvents\":12"), std::string::npos);
    EXPECT_EQ(json.find("\"ts\":11"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":12"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":19"), std::string::npos);
}

TEST(Probe, ChromeTraceExportShape)
{
    sim::Probe p;
    const int t = p.addTrack(3, "part1");
    const int c = p.addCounter(t, "occupancy");
    p.span(t, "compute", 1'000'000, 3'000'000);
    p.instant(t, "finished", 3'000'000);
    p.counter(c, 2'000'000, 42.0);

    sim::JsonWriter w;
    p.writeChromeTrace(w);
    const std::string &json = w.str();

    // Metadata: cluster 3 is a process, the track a named thread.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"cluster3\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"part1\""), std::string::npos);
    // The span: complete event, µs timestamps (1e6 ticks = 1 µs).
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":1"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2"), std::string::npos);
    // Instant and counter events.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":42"), std::string::npos);
}

TEST(Probe, DistributionRegistryIsIdempotentAndExports)
{
    sim::Probe p;
    stats::Distribution &d = p.addDist("lat", 0.0, 100.0, 10);
    d.sample(10.0);
    stats::Distribution &again = p.addDist("lat", 0.0, 1.0, 1);
    EXPECT_EQ(&d, &again);
    again.sample(30.0);

    stats::Group g("dist");
    p.exportDists(g);
    const stats::Distribution &out = g.getDistribution("lat");
    EXPECT_DOUBLE_EQ(out.count(), 2.0);
    EXPECT_DOUBLE_EQ(out.mean(), 20.0);
}

TEST(Probe, EndToEndQuickRunCoversSubsystems)
{
    const std::string dir = testing::TempDir();
    const std::string timeline = dir + "distda_probe_timeline.json";
    const std::string stats_json = dir + "distda_probe_stats.json";

    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_F;
    driver::RunOptions opts;
    opts.scale = 0.25;
    opts.obs.timelinePath = timeline;
    opts.obs.statsJsonPath = stats_json;

    const driver::Metrics m = driver::runWorkload("pr", cfg, opts);
    EXPECT_TRUE(m.validated);

    const std::string trace = slurp(timeline);
    ASSERT_FALSE(trace.empty());
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    // Spans from at least four subsystems: actors, access units,
    // caches and the NoC (plus the host-side invoke track).
    EXPECT_NE(trace.find("\"compute\""), std::string::npos);
    EXPECT_NE(trace.find("\"fill\""), std::string::npos);
    EXPECT_NE(trace.find("\"miss\""), std::string::npos);
    EXPECT_NE(trace.find("\"acc_data\""), std::string::npos);
    EXPECT_NE(trace.find("\"invoke\""), std::string::npos);

    const std::string report = slurp(stats_json);
    ASSERT_FALSE(report.empty());
    EXPECT_NE(report.find("\"workload\":\"pr\""), std::string::npos);
    EXPECT_NE(report.find("\"type\":\"distribution\""),
              std::string::npos);
    EXPECT_NE(report.find("\"noc.packet_bytes\""), std::string::npos);
    EXPECT_NE(report.find("\"actor.slice_insts\""), std::string::npos);

    std::remove(timeline.c_str());
    std::remove(stats_json.c_str());
}
