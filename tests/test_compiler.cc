/**
 * @file
 * Unit tests for the compiler: the kernel builder and DFG invariants,
 * dependence classification (§V-A-2's three cases), the multilevel
 * partitioner's invariants, multi-access combining, channel creation,
 * microcode generation rules and the Table V/VI outputs.
 */

#include <gtest/gtest.h>

#include "death_helpers.hh"
#include "src/compiler/classify.hh"
#include "src/compiler/partitioner.hh"
#include "src/compiler/plan.hh"
#include "src/sim/rng.hh"

using namespace distda;
using namespace distda::compiler;

namespace
{

/** A two-object streaming kernel: C[i] = A[i] + A[i+1]. */
Kernel
makeStreamKernel()
{
    KernelBuilder kb("stream");
    const int a = kb.object("A", 1024, 8, true);
    const int c = kb.object("C", 1024, 8, true);
    kb.loopStatic(512);
    auto x = kb.load(a, kb.affine(0, 1));
    auto y = kb.load(a, kb.affine(1, 1));
    kb.store(c, kb.affine(0, 1), kb.fadd(x, y));
    return kb.build();
}

/** Reduction kernel with a carried FP sum. */
Kernel
makeReduceKernel()
{
    KernelBuilder kb("reduce");
    const int a = kb.object("A", 1024, 8, true);
    kb.loopStatic(512);
    auto sum = kb.carry(Word{.f = 0.0}, true);
    auto x = kb.load(a, kb.affine(0, 1));
    kb.setCarry(sum, kb.fadd(sum, x));
    kb.markResult(sum);
    return kb.build();
}

/** Pointer-chase kernel: memory recurrence (§V-A-2 case 2). */
Kernel
makeChaseKernel()
{
    KernelBuilder kb("chase");
    const int next = kb.object("next", 1024, 8, false);
    kb.loopStatic(256);
    auto ptr = kb.carry(Word{0}, false);
    auto v = kb.loadIdx(next, ptr);
    kb.setCarry(ptr, v);
    kb.markResult(ptr);
    return kb.build();
}

/** In-place stencil with an in-row carried store->load dependence. */
Kernel
makeSeidelKernel()
{
    KernelBuilder kb("seidelish");
    const int a = kb.object("A", 4096, 8, true);
    kb.loopStatic(512);
    auto l = kb.load(a, kb.affine(0, 1));
    auto r = kb.load(a, kb.affine(2, 1));
    kb.store(a, kb.affine(1, 1),
             kb.fdiv(kb.fadd(l, r), kb.constFloat(2.0)));
    return kb.build();
}

} // namespace

TEST(Builder, VerifyCatchesMissingLoop)
{
    KernelBuilder kb("bad");
    const int a = kb.object("A", 16, 8, true);
    kb.store(a, kb.affine(0, 1), kb.constFloat(0.0));
    EXPECT_PANIC((void)kb.build(), "extent");
}

TEST(Builder, VerifyCatchesUnsetCarry)
{
    KernelBuilder kb("bad");
    const int a = kb.object("A", 16, 8, true);
    kb.loopStatic(4);
    auto c = kb.carry(Word{0}, false);
    kb.store(a, kb.affine(0, 1), c);
    EXPECT_PANIC((void)kb.build(), "never updated");
}

TEST(Builder, TopoOrderRespectsDependencies)
{
    Kernel k = makeStreamKernel();
    const auto order = k.topoOrder();
    std::vector<int> pos(k.nodes.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
    for (const Node &n : k.nodes) {
        for (int in : n.valueInputs())
            EXPECT_LT(pos[static_cast<std::size_t>(in)],
                      pos[static_cast<std::size_t>(n.id)]);
    }
}

TEST(Builder, InstCountExcludesPseudoNodes)
{
    Kernel k = makeStreamKernel();
    // 2 loads + 1 add + 1 store.
    EXPECT_EQ(k.instCount(), 4);
}

TEST(Classify, StreamKernelIsParallelizable)
{
    const auto dep = classifyKernel(makeStreamKernel());
    EXPECT_EQ(dep.cls, DfgClass::Parallelizable);
    EXPECT_FALSE(dep.hasCarry);
    EXPECT_EQ(dep.carryChainCycles, 0);
}

TEST(Classify, ReductionIsPipelinable)
{
    const auto dep = classifyKernel(makeReduceKernel());
    EXPECT_EQ(dep.cls, DfgClass::Pipelinable);
    EXPECT_TRUE(dep.hasCarry);
    EXPECT_EQ(dep.carryChainCycles, 3); // one FP add
}

TEST(Classify, PointerChaseIsNonPartitionable)
{
    const auto dep = classifyKernel(makeChaseKernel());
    EXPECT_EQ(dep.cls, DfgClass::NonPartitionable);
    EXPECT_TRUE(dep.hasMemoryRecurrence);
}

TEST(Classify, SeidelCarriedMemDepDetected)
{
    const auto dep = classifyKernel(makeSeidelKernel());
    EXPECT_EQ(dep.cls, DfgClass::Pipelinable);
    EXPECT_TRUE(dep.hasCarriedMemDep);
}

TEST(Classify, CarriedDistanceArithmetic)
{
    AffinePattern store;
    store.constBase = 1;
    store.ivCoeff = 1;
    AffinePattern load;
    load.constBase = 0;
    load.ivCoeff = 1;
    std::int64_t d = 0;
    EXPECT_TRUE(carriedDistance(store, load, d));
    EXPECT_EQ(d, 1);

    // Load ahead of the store: no carried dependence.
    load.constBase = 5;
    EXPECT_FALSE(carriedDistance(store, load, d));

    // Different strides: conservative dependence.
    load.ivCoeff = 2;
    EXPECT_TRUE(carriedDistance(store, load, d));
}

TEST(Partitioner, CutCostZeroForSinglePartition)
{
    PartitionGraph g;
    g.addVertex(1.0, 0);
    g.addVertex(1.0, 1);
    g.addEdge(0, 1, 8.0);
    const auto sol = partitionGraph(g, 1);
    EXPECT_DOUBLE_EQ(sol.cutCost, 0.0);
}

TEST(Partitioner, SweepPrefersOneObjectPerPartition)
{
    PartitionGraph g;
    const int o0 = g.addVertex(1.0, 0);
    const int o1 = g.addVertex(1.0, 1);
    const int c = g.addVertex(1.0);
    g.addEdge(o0, c, 8.0);
    g.addEdge(c, o1, 2.0);
    const auto sol = sweepPartition(g);
    EXPECT_EQ(sol.maxObjectsPerPartition, 1);
    // The compute vertex should side with its heavier edge.
    EXPECT_EQ(sol.assignment[static_cast<std::size_t>(c)],
              sol.assignment[static_cast<std::size_t>(o0)]);
}

TEST(Partitioner, AllVerticesAssigned)
{
    sim::Rng rng(5);
    PartitionGraph g;
    for (int i = 0; i < 40; ++i)
        g.addVertex(1.0, i < 3 ? i : -1);
    for (int i = 3; i < 40; ++i)
        g.addEdge(static_cast<int>(rng.nextBelow(
                      static_cast<std::uint64_t>(i))),
                  i, 1.0 + static_cast<double>(i % 5));
    for (int k = 1; k <= 3; ++k) {
        const auto sol = partitionGraph(g, k);
        ASSERT_EQ(sol.assignment.size(), g.vertices.size());
        for (int p : sol.assignment) {
            EXPECT_GE(p, 0);
            EXPECT_LT(p, k);
        }
    }
}

TEST(Partitioner, CutNeverExceedsTotalEdgeWeight)
{
    sim::Rng rng(6);
    for (int trial = 0; trial < 10; ++trial) {
        PartitionGraph g;
        const int n = 16 + trial * 8;
        for (int i = 0; i < n; ++i)
            g.addVertex(1.0, i < 4 ? i : -1);
        double total = 0.0;
        for (int i = 1; i < n; ++i) {
            const double w = 1.0 + static_cast<double>(rng.nextBelow(9));
            g.addEdge(static_cast<int>(rng.nextBelow(
                          static_cast<std::uint64_t>(i))),
                      i, w);
            total += w;
        }
        const auto sol = sweepPartition(g);
        EXPECT_LE(sol.cutCost, total);
        EXPECT_EQ(sol.maxObjectsPerPartition, 1);
    }
}

TEST(Partitioner, CoarseningHandlesLargeGraphs)
{
    sim::Rng rng(8);
    PartitionGraph g;
    for (int i = 0; i < 400; ++i)
        g.addVertex(1.0, i < 4 ? i : -1);
    for (int i = 1; i < 400; ++i)
        g.addEdge(static_cast<int>(
                      rng.nextBelow(static_cast<std::uint64_t>(i))),
                  i, 1.0);
    const auto sol = partitionGraph(g, 4);
    EXPECT_EQ(sol.assignment.size(), 400u);
    EXPECT_EQ(sol.maxObjectsPerPartition, 1);
}

TEST(Compile, MonoOptionForcesSinglePartition)
{
    CompileOptions opts;
    opts.partition = false;
    const auto plan = compileKernel(makeStreamKernel(), opts);
    EXPECT_EQ(plan.characteristics.numPartitions, 1);
    EXPECT_TRUE(plan.channels.empty());
}

TEST(Compile, DistSplitsTwoObjectKernel)
{
    const auto plan = compileKernel(makeStreamKernel());
    EXPECT_EQ(plan.characteristics.numPartitions, 2);
    ASSERT_EQ(plan.channels.size(), 1u);
    EXPECT_FALSE(plan.channels[0].control);
    // Every node lives in exactly one partition.
    std::vector<int> seen(plan.kernel.nodes.size(), 0);
    for (const auto &part : plan.partitions)
        for (int n : part.nodes)
            ++seen[static_cast<std::size_t>(n)];
    for (int s : seen)
        EXPECT_EQ(s, 1);
}

TEST(Compile, PartitionsHaveAtMostOneObject)
{
    for (const Kernel &k :
         {makeStreamKernel(), makeReduceKernel(), makeSeidelKernel()}) {
        const auto plan = compileKernel(k);
        for (const auto &part : plan.partitions) {
            std::set<int> objs;
            for (const auto &ad : part.accessors)
                objs.insert(ad.objId);
            EXPECT_LE(objs.size(), 1u);
        }
    }
}

TEST(Compile, CombiningMergesNearbyTaps)
{
    const auto plan = compileKernel(makeSeidelKernel());
    // Loads at distance 1/2 and the store combine into one buffer.
    ASSERT_EQ(plan.partitions.size(), 1u);
    const auto &part = plan.partitions[0];
    EXPECT_EQ(part.streamBuffers, 1);
    int followers = 0;
    for (const auto &ad : part.accessors)
        followers += ad.combinedWithSlot >= 0;
    EXPECT_EQ(followers, 2);
}

TEST(Compile, DistantTapsGetOwnBuffers)
{
    KernelBuilder kb("far");
    const int a = kb.object("A", 1 << 20, 8, true);
    const int c = kb.object("C", 1 << 20, 8, true);
    kb.loopStatic(1024);
    auto x = kb.load(a, kb.affine(0, 1));
    auto y = kb.load(a, kb.affine(1 << 16, 1)); // 512KB apart
    kb.store(c, kb.affine(0, 1), kb.fadd(x, y));
    const auto plan = compileKernel(kb.build());
    for (const auto &part : plan.partitions) {
        if (part.objId == 0)
            EXPECT_EQ(part.streamBuffers, 2);
    }
}

TEST(Compile, MicrocodeConsumesBeforeUseAndCarriesLast)
{
    const auto plan = compileKernel(makeReduceKernel());
    for (const auto &part : plan.partitions) {
        bool saw_carry_write = false;
        std::set<std::uint16_t> defined;
        for (const auto &c : part.program.constRegs)
            defined.insert(c.reg);
        for (const auto &[pi, reg] : part.program.paramRegs)
            defined.insert(reg);
        for (const auto &c : part.program.carries)
            defined.insert(c.reg);
        if (part.program.ivReg != noReg)
            defined.insert(part.program.ivReg);
        for (const auto &inst : part.program.insts) {
            if (inst.kind == MicroKind::CarryWrite)
                saw_carry_write = true;
            else
                EXPECT_FALSE(saw_carry_write)
                    << "instruction after CarryWrite";
            for (std::uint16_t r : {inst.a, inst.b, inst.c}) {
                if (r != noReg)
                    EXPECT_TRUE(defined.count(r))
                        << "register used before definition";
            }
            if (inst.dst != noReg)
                defined.insert(inst.dst);
        }
    }
}

TEST(Compile, MicrocodeSizeIsEightBytesPerInst)
{
    const auto plan = compileKernel(makeStreamKernel());
    for (const auto &part : plan.partitions) {
        EXPECT_EQ(part.program.byteSize(),
                  part.program.insts.size() * 8);
    }
    EXPECT_EQ(plan.characteristics.maxInstBytes,
              plan.characteristics.maxInsts * 8);
}

TEST(Compile, PredicateChannelsAreControl)
{
    KernelBuilder kb("pred");
    const int a = kb.object("A", 1024, 8, false);
    const int b = kb.object("B", 1024, 8, false);
    kb.loopStatic(256);
    auto x = kb.load(a, kb.affine(0, 1));
    auto flag = kb.compute(OpCode::ICmpLt, x, kb.constInt(5));
    kb.storeIf(flag, b, kb.affine(0, 1), kb.constInt(1));
    const auto plan = compileKernel(kb.build());
    ASSERT_EQ(plan.channels.size(), 1u);
    EXPECT_TRUE(plan.channels[0].control);
}

TEST(Compile, MechanismsMatchKernelShape)
{
    const auto stream_plan = compileKernel(makeStreamKernel());
    auto has = [](const OffloadPlan &p, Mechanism m) {
        return p.mechanisms[static_cast<std::size_t>(m)];
    };
    EXPECT_TRUE(has(stream_plan, Mechanism::CpConfigStream));
    EXPECT_FALSE(has(stream_plan, Mechanism::CpRead));

    const auto chase_plan = compileKernel(makeChaseKernel());
    EXPECT_TRUE(has(chase_plan, Mechanism::CpRead));
    EXPECT_TRUE(has(chase_plan, Mechanism::CpConfigRandom));
    EXPECT_TRUE(has(chase_plan, Mechanism::CpLoadRf));
}

TEST(Compile, ChaseHasNoStreamBuffers)
{
    // Table VI: pch has #buf = 0 (only the random-access path).
    const auto plan = compileKernel(makeChaseKernel());
    ASSERT_EQ(plan.partitions.size(), 1u);
    EXPECT_EQ(plan.partitions[0].streamBuffers, 0);
}

TEST(Compile, CarryCycleStaysInOnePartition)
{
    // sum accumulates values from a remote object: the carry cycle
    // must not split across partitions.
    KernelBuilder kb("xacc");
    const int a = kb.object("A", 1024, 8, true);
    const int b = kb.object("B", 1024, 8, true);
    kb.loopStatic(256);
    auto x = kb.load(a, kb.affine(0, 1));
    auto y = kb.load(b, kb.affine(0, 1));
    auto sum = kb.carry(Word{.f = 0.0}, true);
    kb.setCarry(sum, kb.fadd(sum, kb.fmul(x, y)));
    kb.markResult(sum);
    const auto plan = compileKernel(kb.build());
    int carry_part = -1, update_part = -1;
    for (const Node &n : plan.kernel.nodes) {
        if (n.kind == NodeKind::Carry) {
            carry_part = plan.partitionIndexOf(n.id);
            update_part = plan.partitionIndexOf(n.carryUpdate);
        }
    }
    EXPECT_EQ(carry_part, update_part);
}

TEST(Compile, NearHostPlacementForSmallIrregular)
{
    KernelBuilder kb("smallrand");
    const int idx = kb.object("idx", 256, 8, false);
    kb.loopStatic(128);
    auto iv = kb.iv();
    auto v = kb.loadIdx(idx, iv);
    auto sum = kb.carry(Word{0}, false);
    kb.setCarry(sum, kb.iadd(sum, v));
    kb.markResult(sum);
    const auto plan = compileKernel(kb.build());
    ASSERT_EQ(plan.partitions.size(), 1u);
    EXPECT_EQ(plan.partitions[0].level, PlacementLevel::NearHost);
}

TEST(Compile, DfgDimensionsArePositive)
{
    for (const Kernel &k : {makeStreamKernel(), makeSeidelKernel()}) {
        const auto plan = compileKernel(k);
        EXPECT_GE(plan.characteristics.dfgLevels, 2);
        EXPECT_GE(plan.characteristics.dfgWidth, 1);
    }
}
