/**
 * @file
 * Driver-layer tests: the architecture-model-to-configuration mapping
 * of §VI-A, metrics arithmetic, ablation-knob plumbing and the system
 * facade (slab-backed allocation, affinity striping).
 */

#include <gtest/gtest.h>

#include "death_helpers.hh"
#include "src/driver/runner.hh"
#include "src/driver/system.hh"

using namespace distda;
using driver::ArchModel;
using driver::RunConfig;

TEST(Config, ModelsMapToPaperConfigurations)
{
    RunConfig ooo;
    ooo.model = ArchModel::OoO;
    EXPECT_FALSE(ooo.usesAccelerator());

    RunConfig ca;
    ca.model = ArchModel::MonoCA;
    auto ca_engine = ca.engineConfig();
    EXPECT_TRUE(ca_engine.centralizedAccess);
    EXPECT_EQ(ca_engine.privateCacheBytes, 8u * 1024u);
    EXPECT_FALSE(ca.compileOptions().partition);
    EXPECT_EQ(ca_engine.accelClockHz, 2'000'000'000ULL);

    RunConfig mono_f;
    mono_f.model = ArchModel::MonoDA_F;
    auto mf = mono_f.engineConfig();
    EXPECT_EQ(mf.kind, engine::ActorKind::Cgra);
    EXPECT_EQ(mf.fabric.rows, 8); // the large Mono-DA-F fabric
    EXPECT_EQ(mf.accelClockHz, 1'000'000'000ULL);
    EXPECT_FALSE(mono_f.compileOptions().partition);
    EXPECT_FALSE(mf.distributedCompute);

    RunConfig dist_io;
    dist_io.model = ArchModel::DistDA_IO;
    auto di = dist_io.engineConfig();
    EXPECT_EQ(di.kind, engine::ActorKind::InOrder);
    EXPECT_EQ(di.accelClockHz, 2'000'000'000ULL);
    EXPECT_TRUE(dist_io.compileOptions().partition);
    EXPECT_TRUE(di.distributedCompute);

    RunConfig sw;
    sw.model = ArchModel::DistDA_IO_SW;
    auto sw_engine = sw.engineConfig();
    EXPECT_EQ(sw_engine.issueWidth, 4);
    EXPECT_TRUE(sw_engine.swPrefetch);

    RunConfig fa;
    fa.model = ArchModel::DistDA_F_A;
    EXPECT_TRUE(fa.allocAffinity());
}

TEST(Config, ClockOverrideApplies)
{
    RunConfig cfg;
    cfg.model = ArchModel::DistDA_IO;
    cfg.accelGHz = 3.0;
    EXPECT_EQ(cfg.engineConfig().accelClockHz, 3'000'000'000ULL);
}

TEST(Config, AblationKnobsReachBothLayers)
{
    RunConfig cfg;
    cfg.model = ArchModel::DistDA_F;
    cfg.disableCombining = true;
    cfg.disableRetention = true;
    cfg.bufferBytesOverride = 1024;
    cfg.channelCapacityOverride = 4;
    EXPECT_FALSE(cfg.compileOptions().enableCombining);
    EXPECT_EQ(cfg.compileOptions().bufferBytes, 1024u);
    auto e = cfg.engineConfig();
    EXPECT_FALSE(e.retainBuffers);
    EXPECT_EQ(e.clusterBufferBytes, 1024u);
    EXPECT_EQ(e.channelCapacity, 4);
}

TEST(Config, HeadlineModelListMatchesPaperOrder)
{
    const auto models = driver::headlineModels();
    ASSERT_EQ(models.size(), 6u);
    EXPECT_STREQ(archModelName(models.front()), "OoO");
    EXPECT_STREQ(archModelName(models.back()), "Dist-DA-F");
}

TEST(Metrics, DerivedQuantities)
{
    driver::Metrics m;
    m.timeNs = 1000.0;
    m.hostInsts = 500.0;
    m.accelInsts = 1500.0;
    m.kernelMemOps = 900.0;
    m.hostMemOps = 100.0;
    m.mmioOps = 10.0;
    EXPECT_DOUBLE_EQ(m.totalInsts(), 2000.0);
    EXPECT_DOUBLE_EQ(m.ipc(), 1.0); // 2000 insts / 2000 cycles @2GHz
    EXPECT_DOUBLE_EQ(m.codeCoverage(), 75.0);
    EXPECT_DOUBLE_EQ(m.dataCoverage(), 90.0);
    EXPECT_DOUBLE_EQ(m.initOverhead(), 1.0);

    driver::Metrics base;
    base.timeNs = 2000.0;
    base.totalEnergyPj = 400.0;
    m.totalEnergyPj = 100.0;
    EXPECT_DOUBLE_EQ(m.speedupVs(base), 2.0);
    EXPECT_DOUBLE_EQ(m.energyEfficiencyVs(base), 4.0);
}

TEST(Runner, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(driver::geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(driver::geomean({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(driver::geomean({}), 0.0);
}

TEST(System, AllocationsAreDisjointAndTracked)
{
    driver::System sys{driver::SystemParams{}};
    auto a = sys.alloc("a", 1024, 8, true);
    auto b = sys.alloc("b", 1024, 4, false);
    EXPECT_GE(b.base, a.base + a.sizeBytes());
    EXPECT_EQ(sys.objects().size(), 2u);
    EXPECT_EQ(sys.slab().liveAllocations(), 2u);
    // The backend serves both.
    a.setF(0, 1.5);
    b.setI(0, -3);
    EXPECT_DOUBLE_EQ(a.getF(0), 1.5);
    EXPECT_EQ(b.getI(0), -3);
}

TEST(System, AffinityStripesAcrossClusters)
{
    driver::SystemParams sp;
    sp.allocAffinity = true;
    driver::System sys(sp);
    auto big = sys.alloc("big", 1 << 16, 8, true); // 512KB
    std::set<int> clusters;
    for (std::uint64_t off = 0; off < big.sizeBytes();
         off += 32 * 1024)
        clusters.insert(sys.hier().l3().clusterOf(big.base + off));
    // 32KB striping: a 512KB object touches many clusters, never one.
    EXPECT_GE(clusters.size(), 4u);
}

TEST(Runner, InvalidWorkloadIsFatal)
{
    RunConfig cfg;
    EXPECT_DEATH((void)driver::runWorkload("bogus", cfg), "unknown");
}

TEST(Config, ParseIntAcceptsExactIntegers)
{
    EXPECT_EQ(driver::parseInt("0", "--n"), 0);
    EXPECT_EQ(driver::parseInt("42", "--n"), 42);
    EXPECT_EQ(driver::parseInt("-7", "--n"), -7);
    EXPECT_EQ(driver::parseInt("9223372036854775807", "--n"),
              9223372036854775807LL);
}

TEST(Config, ParseIntRejectsGarbageInsteadOfDefaultingToZero)
{
    // atoi-style parsing silently turned typos into 0; every one of
    // these must be a hard error.
    EXPECT_PANIC((void)driver::parseInt("", "--jobs"), "empty value");
    EXPECT_PANIC((void)driver::parseInt("four", "--jobs"),
                 "not an integer");
    EXPECT_PANIC((void)driver::parseInt("4x", "--jobs"),
                 "not an integer");
    EXPECT_PANIC((void)driver::parseInt("4.5", "--jobs"),
                 "not an integer");
    EXPECT_PANIC((void)driver::parseInt("99999999999999999999",
                                        "--jobs"),
                 "out of range");
}

TEST(Config, ParseDoubleAcceptsNumbers)
{
    EXPECT_DOUBLE_EQ(driver::parseDouble("0.25", "--scale"), 0.25);
    EXPECT_DOUBLE_EQ(driver::parseDouble("-3", "--scale"), -3.0);
    EXPECT_DOUBLE_EQ(driver::parseDouble("1e3", "--scale"), 1000.0);
}

TEST(Config, ParseDoubleRejectsGarbageInsteadOfDefaultingToZero)
{
    EXPECT_PANIC((void)driver::parseDouble("", "--scale"),
                 "empty value");
    EXPECT_PANIC((void)driver::parseDouble("fast", "--scale"),
                 "not a number");
    EXPECT_PANIC((void)driver::parseDouble("1.5x", "--scale"),
                 "not a number");
}

TEST(Config, ParseBreakdownModeAcceptsKnownModes)
{
    EXPECT_EQ(driver::parseBreakdownMode("", "--breakdown"),
              driver::BreakdownMode::Text);
    EXPECT_EQ(driver::parseBreakdownMode("text", "--breakdown"),
              driver::BreakdownMode::Text);
    EXPECT_EQ(driver::parseBreakdownMode("json", "--breakdown"),
              driver::BreakdownMode::Json);
    EXPECT_EQ(driver::parseBreakdownMode("off", "--breakdown"),
              driver::BreakdownMode::Off);
}

TEST(Config, ParseBreakdownModeRejectsGarbage)
{
    EXPECT_PANIC(
        (void)driver::parseBreakdownMode("yaml", "--breakdown"),
        "not a breakdown mode");
    EXPECT_PANIC(
        (void)driver::parseBreakdownMode("Text", "--breakdown"),
        "not a breakdown mode");
}
