/**
 * @file
 * Workload-level tests: every Table IV benchmark builds well-formed
 * kernels, its compiled plans satisfy the partitioning invariants
 * (every node placed once, at most one memory object per partition,
 * channels consistent), runs are deterministic, and the classification
 * of known kernels matches the paper's taxonomy.
 */

#include <gtest/gtest.h>

#include "src/compiler/classify.hh"
#include "src/driver/runner.hh"
#include "src/workloads/workload.hh"

using namespace distda;

namespace
{

class EveryWorkload : public testing::TestWithParam<std::string>
{
};

std::string
name(const testing::TestParamInfo<std::string> &info)
{
    return info.param;
}

} // namespace

TEST_P(EveryWorkload, PlansSatisfyInvariants)
{
    setInformEnabled(false);
    auto wl = workloads::makeWorkload(GetParam(), 0.25);
    driver::SystemParams sp;
    sp.arenaBytes = wl->arenaBytes();
    driver::System sys(sp);
    wl->setup(sys);

    ASSERT_FALSE(wl->kernels().empty());
    for (const compiler::Kernel *k : wl->kernels()) {
        k->verify();
        const auto plan = compiler::compileKernel(*k);

        // Every node lives in exactly one partition.
        std::vector<int> seen(k->nodes.size(), 0);
        for (const auto &part : plan.partitions)
            for (int n : part.nodes)
                ++seen[static_cast<std::size_t>(n)];
        for (int s : seen)
            EXPECT_EQ(s, 1);

        // At most one memory object per partition (§IV-A).
        for (const auto &part : plan.partitions) {
            std::set<int> objs;
            for (const auto &ad : part.accessors)
                objs.insert(ad.objId);
            EXPECT_LE(objs.size(), 1u) << k->name;
        }

        // Channel endpoints reference real partitions and the
        // in/out lists agree with the channel table.
        for (const auto &ch : plan.channels) {
            ASSERT_GE(ch.srcPartition, 0);
            ASSERT_LT(ch.srcPartition,
                      static_cast<int>(plan.partitions.size()));
            const auto &src = plan.partitions[static_cast<std::size_t>(
                ch.srcPartition)];
            EXPECT_NE(std::find(src.outChannels.begin(),
                                src.outChannels.end(), ch.id),
                      src.outChannels.end());
            if (ch.dstPartition >= 0) {
                const auto &dst =
                    plan.partitions[static_cast<std::size_t>(
                        ch.dstPartition)];
                EXPECT_NE(std::find(dst.inChannels.begin(),
                                    dst.inChannels.end(), ch.id),
                          dst.inChannels.end());
            }
        }

        // Table VI invariants.
        EXPECT_GE(plan.characteristics.maxInsts, 1);
        EXPECT_EQ(plan.characteristics.maxInstBytes,
                  plan.characteristics.maxInsts * 8);
        EXPECT_GE(plan.characteristics.avgBuffers, 0.0);
    }
}

TEST_P(EveryWorkload, MetricsAreDeterministic)
{
    setInformEnabled(false);
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    driver::RunOptions opts;
    opts.scale = 0.25;
    const auto a = driver::runWorkload(GetParam(), cfg, opts);
    const auto b = driver::runWorkload(GetParam(), cfg, opts);
    EXPECT_TRUE(a.validated);
    EXPECT_DOUBLE_EQ(a.timeNs, b.timeNs);
    EXPECT_DOUBLE_EQ(a.totalEnergyPj, b.totalEnergyPj);
    EXPECT_DOUBLE_EQ(a.cacheAccesses, b.cacheAccesses);
    EXPECT_DOUBLE_EQ(a.nocTotalBytes(), b.nocTotalBytes());
}

TEST_P(EveryWorkload, AccelConfigCutsCacheAccesses)
{
    setInformEnabled(false);
    driver::RunOptions opts;
    opts.scale = 0.25;
    driver::RunConfig ooo;
    ooo.model = driver::ArchModel::OoO;
    driver::RunConfig dist;
    dist.model = driver::ArchModel::DistDA_F;
    const auto base = driver::runWorkload(GetParam(), ooo, opts);
    const auto acc = driver::runWorkload(GetParam(), dist, opts);
    // The Fig 8 effect: decentralized accesses reduce cache accesses.
    // Column-stride workloads (adi, pca, cho) make one bank access per
    // element where the OoO buffers a line in L1, so they may exceed
    // the baseline slightly at this small scale; everything else must
    // not regress.
    EXPECT_LE(acc.cacheAccesses, base.cacheAccesses * 1.30)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TableIV, EveryWorkload,
                         testing::ValuesIn(workloads::workloadNames()),
                         name);

TEST(WorkloadTaxonomy, MatchesPaperClassification)
{
    setInformEnabled(false);
    // Pointer chase is the canonical non-partitionable case-2 kernel;
    // seidel/nw/adi carry dependences (case 3); streaming kernels in
    // disparity are case-1 parallelizable.
    auto classify_first = [](const std::string &w) {
        auto wl = workloads::makeWorkload(w, 0.25);
        driver::SystemParams sp;
        sp.arenaBytes = wl->arenaBytes();
        driver::System sys(sp);
        wl->setup(sys);
        return compiler::classifyKernel(*wl->kernels().front()).cls;
    };
    EXPECT_EQ(classify_first("pch"),
              compiler::DfgClass::NonPartitionable);
    EXPECT_EQ(classify_first("sei"), compiler::DfgClass::Pipelinable);
    EXPECT_EQ(classify_first("nw"), compiler::DfgClass::Pipelinable);
    EXPECT_EQ(classify_first("adi"), compiler::DfgClass::Pipelinable);
    EXPECT_EQ(classify_first("dis"),
              compiler::DfgClass::Parallelizable);
    EXPECT_EQ(classify_first("tra"),
              compiler::DfgClass::Parallelizable);
}

TEST(WorkloadRegistry, TwelveBenchmarksPlusSpmv)
{
    const auto names = workloads::workloadNames();
    EXPECT_EQ(names.size(), 12u);
    EXPECT_NE(workloads::makeWorkload("spmv", 0.25), nullptr);
    EXPECT_DEATH((void)workloads::makeWorkload("nope", 1.0), "unknown");
}

TEST(WorkloadScaling, ScaleChangesProblemSize)
{
    setInformEnabled(false);
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::OoO;
    driver::RunOptions small, big;
    small.scale = 0.25;
    big.scale = 0.5;
    const auto a = driver::runWorkload("sei", cfg, small);
    const auto b = driver::runWorkload("sei", cfg, big);
    EXPECT_GT(b.kernelMemOps, a.kernelMemOps * 2.0);
}
