/**
 * @file
 * Death-test helper: assert that a statement trips DISTDA_ASSERT /
 * panic() (which abort) with a message matching @p regex. Use this
 * instead of raw EXPECT_DEATH so rejected-input tests degrade to an
 * explicit skip (rather than silently passing) on platforms where
 * googletest cannot run death tests.
 */

#ifndef DISTDA_TESTS_DEATH_HELPERS_HH
#define DISTDA_TESTS_DEATH_HELPERS_HH

#include <gtest/gtest.h>

#if GTEST_HAS_DEATH_TEST
#define EXPECT_PANIC(stmt, regex) EXPECT_DEATH(stmt, regex)
#else
#define EXPECT_PANIC(stmt, regex)                                         \
    GTEST_SKIP() << "death tests unavailable on this platform"
#endif

#endif // DISTDA_TESTS_DEATH_HELPERS_HH
