/**
 * @file
 * Tests for the stats-JSON report surface and the comparison
 * machinery behind tools/distda_stats: the report schema (including
 * the offload-lifecycle breakdown and dropped_events), the breakdown
 * conservation invariant across every workload under both Dist-DA
 * models, and the statsdiff flatten/join/render pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "src/driver/runner.hh"
#include "src/driver/statsdiff.hh"
#include "src/offload/lifecycle.hh"
#include "src/sim/json.hh"
#include "src/workloads/workload.hh"

using namespace distda;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

sim::JsonValue
runToJson(const std::string &workload, driver::ArchModel model,
          double scale, const std::string &tag)
{
    driver::RunConfig cfg;
    cfg.model = model;
    driver::RunOptions opts;
    opts.scale = scale;
    const std::string path =
        testing::TempDir() + "report_" + tag + ".json";
    opts.obs.statsJsonPath = path;
    (void)driver::runWorkload(workload, cfg, opts);
    return sim::parseJson(slurp(path), path.c_str());
}

} // namespace

TEST(Report, StatsJsonCarriesSchemaWithBreakdown)
{
    setInformEnabled(false);
    const sim::JsonValue doc =
        runToJson("bfs", driver::ArchModel::DistDA_IO, 0.1, "schema");

    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("workload").str, "bfs");
    EXPECT_EQ(doc.at("config").str, "Dist-DA-IO");
    ASSERT_TRUE(doc.at("metrics").isObject());
    ASSERT_TRUE(doc.at("stats").isObject());
    EXPECT_TRUE(doc.at("dropped_events").isNumber());
    EXPECT_DOUBLE_EQ(doc.at("dropped_events").num, 0.0);

    const sim::JsonValue &bd = doc.at("offload_breakdown");
    ASSERT_TRUE(bd.isArray());
    ASSERT_FALSE(bd.arr.empty());
    for (const sim::JsonValue &row : bd.arr) {
        EXPECT_TRUE(row.at("kernel").isString());
        EXPECT_GT(row.at("invocations").num, 0.0);
        const sim::JsonValue &phases = row.at("phases");
        ASSERT_TRUE(phases.isObject());
        ASSERT_EQ(phases.obj.size(), offload::kNumPhases);
        for (std::size_t p = 0; p < offload::kNumPhases; ++p) {
            EXPECT_EQ(phases.obj[p].first,
                      offload::phaseName(
                          static_cast<offload::Phase>(p)));
        }
        EXPECT_TRUE(row.at("e2e_ticks").isNumber());
        EXPECT_TRUE(row.at("p50_ticks").isNumber());
        EXPECT_TRUE(row.at("p95_ticks").isNumber());
        EXPECT_TRUE(row.at("p99_ticks").isNumber());
        EXPECT_TRUE(row.at("min_ticks").isNumber());
        EXPECT_TRUE(row.at("max_ticks").isNumber());
    }
}

TEST(Report, BreakdownConservesAcrossWorkloadsAndModels)
{
    setInformEnabled(false);
    for (const std::string &w : workloads::workloadNames()) {
        for (const driver::ArchModel model :
             {driver::ArchModel::DistDA_IO,
              driver::ArchModel::DistDA_F}) {
            const sim::JsonValue doc = runToJson(
                w, model, 0.1,
                w + (model == driver::ArchModel::DistDA_IO ? "_io"
                                                           : "_f"));
            const sim::JsonValue &bd = doc.at("offload_breakdown");
            ASSERT_TRUE(bd.isArray()) << w;
            for (const sim::JsonValue &row : bd.arr) {
                const std::string kernel = row.at("kernel").str;
                double phase_sum = 0.0;
                for (const auto &[name, v] : row.at("phases").obj) {
                    EXPECT_GE(v.num, 0.0) << w << "/" << kernel
                                          << " phase " << name;
                    phase_sum += v.num;
                }
                // Conservation: phases account for every tick of
                // end-to-end latency, exactly (sums of integer tick
                // counts, no rounding involved at these magnitudes).
                EXPECT_EQ(phase_sum, row.at("e2e_ticks").num)
                    << w << "/" << kernel;
                EXPECT_GT(row.at("invocations").num, 0.0)
                    << w << "/" << kernel;
                EXPECT_LE(row.at("p50_ticks").num,
                          row.at("p95_ticks").num)
                    << w << "/" << kernel;
                EXPECT_LE(row.at("p95_ticks").num,
                          row.at("p99_ticks").num)
                    << w << "/" << kernel;
                EXPECT_LE(row.at("min_ticks").num,
                          row.at("max_ticks").num)
                    << w << "/" << kernel;
            }
        }
    }
}

TEST(StatsDiff, FlattensNumericLeavesInDocumentOrder)
{
    const sim::JsonValue doc = sim::parseJson(
        R"({"a":1,"b":{"c":2.5,"d":[3,{"e":4}]},"ok":true,"s":"x"})",
        "test");
    // Strings are skipped; booleans flatten to 0/1.
    const auto leaves = driver::flattenNumericLeaves(doc);
    ASSERT_EQ(leaves.size(), 5u);
    EXPECT_EQ(leaves[0].first, "a");
    EXPECT_DOUBLE_EQ(leaves[0].second, 1.0);
    EXPECT_EQ(leaves[1].first, "b.c");
    EXPECT_EQ(leaves[2].first, "b.d[0]");
    EXPECT_DOUBLE_EQ(leaves[2].second, 3.0);
    EXPECT_EQ(leaves[3].first, "b.d[1].e");
    EXPECT_EQ(leaves[4].first, "ok");
    EXPECT_DOUBLE_EQ(leaves[4].second, 1.0);
}

TEST(StatsDiff, IdenticalDocumentsPass)
{
    const sim::JsonValue doc = sim::parseJson(
        R"({"x":1,"y":{"z":[1,2,3]},"wall_ms":77.0})", "test");
    driver::StatsDiffOptions opts;
    opts.ignoreSubstrings = driver::defaultIgnoreSubstrings();
    const driver::StatsDiff d = driver::diffReports(doc, doc, opts);
    EXPECT_TRUE(d.pass());
    EXPECT_EQ(d.changed, 0u);
    EXPECT_EQ(d.onlyA, 0u);
    EXPECT_EQ(d.onlyB, 0u);
    // wall_ms is on the default ignore list.
    EXPECT_EQ(d.compared, 4u);
}

TEST(StatsDiff, ThresholdGatesPercentChange)
{
    const sim::JsonValue a =
        sim::parseJson(R"({"lat":100.0})", "test");
    const sim::JsonValue b =
        sim::parseJson(R"({"lat":104.0})", "test");

    driver::StatsDiffOptions strict; // threshold 0: any change fails
    driver::StatsDiff d = driver::diffReports(a, b, strict);
    EXPECT_FALSE(d.pass());
    EXPECT_EQ(d.changed, 1u);
    EXPECT_EQ(d.failed, 1u);
    ASSERT_EQ(d.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(d.rows[0].delta(), 4.0);
    EXPECT_DOUBLE_EQ(d.rows[0].pct(), 4.0);

    driver::StatsDiffOptions loose;
    loose.thresholdPct = 5.0; // +4% is within a 5% band
    EXPECT_TRUE(driver::diffReports(a, b, loose).pass());
}

TEST(StatsDiff, StructuralAndZeroBaselineChangesAlwaysFail)
{
    const sim::JsonValue a =
        sim::parseJson(R"({"gone":1,"zero":0})", "test");
    const sim::JsonValue b =
        sim::parseJson(R"({"zero":3,"new":2})", "test");
    driver::StatsDiffOptions opts;
    opts.thresholdPct = 1e9; // even an absurd band cannot save these
    const driver::StatsDiff d = driver::diffReports(a, b, opts);
    EXPECT_FALSE(d.pass());
    EXPECT_EQ(d.onlyA, 1u);
    EXPECT_EQ(d.onlyB, 1u);
    EXPECT_EQ(d.failed, 3u); // removed + added + zero-baseline
    ASSERT_EQ(d.rows.size(), 3u);
    EXPECT_TRUE(d.rows[1].zeroBaseline());
    EXPECT_DOUBLE_EQ(d.rows[1].pct(), 0.0); // no finite percentage
    EXPECT_EQ(d.rows[2].path, "new");       // B-only rows come last
}

TEST(StatsDiff, RendersEveryFormat)
{
    const sim::JsonValue a =
        sim::parseJson(R"({"m":{"t":10.0},"u":1})", "test");
    const sim::JsonValue b =
        sim::parseJson(R"({"m":{"t":12.5},"u":1})", "test");
    driver::StatsDiffOptions opts;
    const driver::StatsDiff d = driver::diffReports(a, b, opts);

    const std::string text = driver::renderDiff(d, opts, "A", "B");
    EXPECT_NE(text.find("m.t"), std::string::npos);
    EXPECT_NE(text.find("compared"), std::string::npos);

    driver::StatsDiffOptions md = opts;
    md.format = driver::DiffFormat::Markdown;
    const std::string mark = driver::renderDiff(d, md, "A", "B");
    EXPECT_NE(mark.find("| metric |"), std::string::npos);
    EXPECT_NE(mark.find("|---"), std::string::npos);

    driver::StatsDiffOptions csv = opts;
    csv.format = driver::DiffFormat::Csv;
    const std::string c = driver::renderDiff(d, csv, "A", "B");
    EXPECT_NE(c.find("metric,"), std::string::npos);
    EXPECT_NE(c.find("m.t,"), std::string::npos);

    driver::StatsDiffOptions only = opts;
    only.changedOnly = true;
    const std::string ch = driver::renderDiff(d, only, "A", "B");
    EXPECT_NE(ch.find("m.t"), std::string::npos);
    EXPECT_EQ(ch.find("\nu "), std::string::npos); // unchanged hidden
}
