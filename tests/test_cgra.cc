/**
 * @file
 * Unit tests for the CGRA fabric model and static mapper: initiation
 * interval properties (ResMII from FU contention, RecMII from carried
 * recurrences), folding for oversized DFGs and the §VI-E area model.
 */

#include <gtest/gtest.h>

#include "src/cgra/cgra.hh"

using namespace distda;
using compiler::MicroInst;
using compiler::MicroKind;
using compiler::MicroProgram;
using compiler::OpCode;

namespace
{

MicroInst
alu(OpCode op, std::uint16_t dst, std::uint16_t a, std::uint16_t b)
{
    MicroInst i;
    i.kind = MicroKind::Alu;
    i.op = op;
    i.dst = dst;
    i.a = a;
    i.b = b;
    return i;
}

MicroProgram
programOf(std::vector<MicroInst> insts, int regs)
{
    MicroProgram p;
    p.insts = std::move(insts);
    p.numRegs = regs;
    return p;
}

} // namespace

TEST(CgraMapper, EmptyProgramIsTrivial)
{
    const auto m = cgra::mapProgram(MicroProgram{}, cgra::CgraParams{});
    EXPECT_EQ(m.ii, 1);
    EXPECT_EQ(m.opsMapped, 0);
}

TEST(CgraMapper, SmallDfgAchievesIiOne)
{
    // 4 independent integer ops on 15 int FUs.
    std::vector<MicroInst> insts;
    for (std::uint16_t i = 0; i < 4; ++i)
        insts.push_back(alu(OpCode::IAdd, static_cast<std::uint16_t>(
                                              10 + i),
                            i, i));
    const auto m = cgra::mapProgram(programOf(insts, 16),
                                    cgra::CgraParams{});
    EXPECT_EQ(m.resMii, 1);
    EXPECT_EQ(m.ii, 1);
    EXPECT_EQ(m.tilesUsed, 4);
}

TEST(CgraMapper, FloatContentionRaisesResMii)
{
    // 9 FP adds on 4 float FUs -> ResMII = ceil(9/4) = 3.
    std::vector<MicroInst> insts;
    for (std::uint16_t i = 0; i < 9; ++i)
        insts.push_back(alu(OpCode::FAdd,
                            static_cast<std::uint16_t>(10 + i), 0, 1));
    const auto m = cgra::mapProgram(programOf(insts, 20),
                                    cgra::CgraParams{});
    EXPECT_EQ(m.resMii, 3);
    EXPECT_GE(m.ii, 3);
}

TEST(CgraMapper, LargeFabricLowersContention)
{
    std::vector<MicroInst> insts;
    for (std::uint16_t i = 0; i < 9; ++i)
        insts.push_back(alu(OpCode::FAdd,
                            static_cast<std::uint16_t>(10 + i), 0, 1));
    const auto small = cgra::mapProgram(programOf(insts, 20),
                                        cgra::CgraParams{});
    const auto large = cgra::mapProgram(programOf(insts, 20),
                                        cgra::CgraParams::large());
    EXPECT_LT(large.resMii, small.resMii);
}

TEST(CgraMapper, RecurrenceRaisesRecMii)
{
    // r2 = r2 chain: c = a+b; d = c+b; carry write d -> depth 2.
    std::vector<MicroInst> insts;
    insts.push_back(alu(OpCode::FAdd, 3, 2, 1)); // reads carry reg 2
    insts.push_back(alu(OpCode::FAdd, 4, 3, 1));
    MicroInst cw;
    cw.kind = MicroKind::CarryWrite;
    cw.a = 4;
    cw.slot = 0;
    insts.push_back(cw);
    MicroProgram p = programOf(insts, 8);
    p.carries.push_back(compiler::CarrySlot{2, compiler::Word{0},
                                            true, 0});
    const auto m = cgra::mapProgram(p, cgra::CgraParams{});
    EXPECT_GE(m.recMii, 2);
    EXPECT_GE(m.ii, m.recMii);
}

TEST(CgraMapper, OversizedDfgFolds)
{
    std::vector<MicroInst> insts;
    for (int i = 0; i < 60; ++i)
        insts.push_back(alu(OpCode::IAdd,
                            static_cast<std::uint16_t>(i + 1), 0, 0));
    const auto m = cgra::mapProgram(programOf(insts, 64),
                                    cgra::CgraParams{}); // 25 tiles
    EXPECT_GE(m.folds, 3);
    EXPECT_GE(m.ii, m.folds);
}

TEST(CgraMapper, MemOpsShareDoublePumpedPorts)
{
    std::vector<MicroInst> insts;
    for (int i = 0; i < 8; ++i) {
        MicroInst mi;
        mi.kind = MicroKind::LoadStream;
        mi.dst = static_cast<std::uint16_t>(i);
        mi.slot = i;
        insts.push_back(mi);
    }
    const auto m = cgra::mapProgram(programOf(insts, 8),
                                    cgra::CgraParams{}); // 2 ports
    EXPECT_EQ(m.resMii, 2); // 8 ops / (2 ports * 2 per cycle)
}

TEST(CgraArea, MatchesPaperPercentages)
{
    const cgra::AreaModel area;
    const double io = area.ioAcceleratorMm2();
    const double f5 =
        area.cgraAcceleratorMm2(cgra::CgraParams{});
    EXPECT_NEAR(100.0 * area.clusterFraction(io), 1.9, 0.15);
    EXPECT_NEAR(100.0 * area.chipFraction(io), 0.3, 0.05);
    EXPECT_NEAR(100.0 * area.clusterFraction(f5), 2.9, 0.15);
    EXPECT_NEAR(100.0 * area.chipFraction(f5), 0.48, 0.05);
}

TEST(CgraArea, LargerFabricCostsMore)
{
    const cgra::AreaModel area;
    EXPECT_GT(area.cgraAcceleratorMm2(cgra::CgraParams::large()),
              area.cgraAcceleratorMm2(cgra::CgraParams{}));
}

TEST(CgraFuClass, InstKindsMapToUnits)
{
    MicroInst mi;
    mi.kind = MicroKind::Alu;
    mi.op = OpCode::FDiv;
    EXPECT_EQ(cgra::fuClassOfInst(mi), compiler::FuClass::Complex);
    mi.op = OpCode::FMul;
    EXPECT_EQ(cgra::fuClassOfInst(mi), compiler::FuClass::Float);
    mi.op = OpCode::IAdd;
    EXPECT_EQ(cgra::fuClassOfInst(mi), compiler::FuClass::Int);
    mi.kind = MicroKind::LoadStream;
    EXPECT_EQ(cgra::fuClassOfInst(mi), compiler::FuClass::Mem);
    mi.kind = MicroKind::Consume;
    EXPECT_EQ(cgra::fuClassOfInst(mi), compiler::FuClass::Ctrl);
}
