/**
 * @file
 * Per-opcode differential tests: every ALU operation the microcode ISA
 * defines is exercised through a kernel on both the host executor and
 * the distributed engine, against a native lambda reference —
 * including the corner operand values each op class is sensitive to.
 */

#include <cmath>
#include <functional>
#include <gtest/gtest.h>

#include "src/driver/context.hh"
#include "src/driver/system.hh"
#include "src/sim/rng.hh"

using namespace distda;
using compiler::KernelBuilder;
using compiler::OpCode;
using compiler::Word;
using driver::ExecContext;

namespace
{

struct OpCase
{
    const char *name;
    OpCode op;
    bool isFloat;   ///< operand/result element type
    bool intResult; ///< comparisons produce integers
    std::function<Word(Word, Word)> ref;
};

Word
wi(std::int64_t v)
{
    Word w;
    w.i = v;
    return w;
}

Word
wf(double v)
{
    Word w;
    w.f = v;
    return w;
}

const std::vector<OpCase> &
cases()
{
    static const std::vector<OpCase> table = {
        {"iadd", OpCode::IAdd, false, true,
         [](Word a, Word b) { return wi(a.i + b.i); }},
        {"isub", OpCode::ISub, false, true,
         [](Word a, Word b) { return wi(a.i - b.i); }},
        {"imul", OpCode::IMul, false, true,
         [](Word a, Word b) { return wi(a.i * b.i); }},
        {"idiv", OpCode::IDiv, false, true,
         [](Word a, Word b) { return wi(a.i / b.i); }},
        {"irem", OpCode::IRem, false, true,
         [](Word a, Word b) { return wi(a.i % b.i); }},
        {"imin", OpCode::IMin, false, true,
         [](Word a, Word b) { return wi(std::min(a.i, b.i)); }},
        {"imax", OpCode::IMax, false, true,
         [](Word a, Word b) { return wi(std::max(a.i, b.i)); }},
        {"iand", OpCode::IAnd, false, true,
         [](Word a, Word b) { return wi(a.i & b.i); }},
        {"ior", OpCode::IOr, false, true,
         [](Word a, Word b) { return wi(a.i | b.i); }},
        {"ixor", OpCode::IXor, false, true,
         [](Word a, Word b) { return wi(a.i ^ b.i); }},
        {"icmplt", OpCode::ICmpLt, false, true,
         [](Word a, Word b) { return wi(a.i < b.i); }},
        {"icmple", OpCode::ICmpLe, false, true,
         [](Word a, Word b) { return wi(a.i <= b.i); }},
        {"icmpeq", OpCode::ICmpEq, false, true,
         [](Word a, Word b) { return wi(a.i == b.i); }},
        {"icmpne", OpCode::ICmpNe, false, true,
         [](Word a, Word b) { return wi(a.i != b.i); }},
        {"fadd", OpCode::FAdd, true, false,
         [](Word a, Word b) { return wf(a.f + b.f); }},
        {"fsub", OpCode::FSub, true, false,
         [](Word a, Word b) { return wf(a.f - b.f); }},
        {"fmul", OpCode::FMul, true, false,
         [](Word a, Word b) { return wf(a.f * b.f); }},
        {"fdiv", OpCode::FDiv, true, false,
         [](Word a, Word b) { return wf(a.f / b.f); }},
        {"fmin", OpCode::FMin, true, false,
         [](Word a, Word b) { return wf(std::min(a.f, b.f)); }},
        {"fmax", OpCode::FMax, true, false,
         [](Word a, Word b) { return wf(std::max(a.f, b.f)); }},
        {"fcmplt", OpCode::FCmpLt, true, true,
         [](Word a, Word b) { return wi(a.f < b.f); }},
        {"fcmple", OpCode::FCmpLe, true, true,
         [](Word a, Word b) { return wi(a.f <= b.f); }},
        {"fcmpeq", OpCode::FCmpEq, true, true,
         [](Word a, Word b) { return wi(a.f == b.f); }},
    };
    return table;
}

class OpcodeDifferential : public testing::TestWithParam<std::size_t>
{
};

std::string
opName(const testing::TestParamInfo<std::size_t> &info)
{
    return cases()[info.param].name;
}

} // namespace

TEST_P(OpcodeDifferential, HostAndEngineMatchReference)
{
    setInformEnabled(false);
    const OpCase &oc = cases()[GetParam()];
    const std::uint64_t n = 257;

    for (driver::ArchModel model :
         {driver::ArchModel::OoO, driver::ArchModel::DistDA_IO,
          driver::ArchModel::DistDA_F}) {
        driver::SystemParams sp;
        driver::System sys(sp);
        auto a = sys.alloc("a", n, 8, oc.isFloat);
        auto b = sys.alloc("b", n, 8, oc.isFloat);
        auto c = sys.alloc("c", n, 8,
                           oc.isFloat && !oc.intResult);
        sim::Rng rng(99);
        std::vector<Word> va(n), vb(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            if (oc.isFloat) {
                // Mix of signs, zero, and denormal-ish magnitudes.
                va[i] = wf((rng.nextDouble() - 0.5) * 8.0);
                vb[i] = wf(i % 17 == 0
                               ? 1.0
                               : (rng.nextDouble() - 0.5) * 8.0 +
                                     0.001);
                a.setF(i, va[i].f);
                b.setF(i, vb[i].f);
            } else {
                va[i] = wi(static_cast<std::int64_t>(
                               rng.nextBelow(2001)) -
                           1000);
                // Nonzero divisors, mixed signs, shift-safe.
                std::int64_t d = static_cast<std::int64_t>(
                                     rng.nextBelow(30)) -
                                 15;
                if (d == 0)
                    d = 7;
                vb[i] = wi(d);
                a.setI(i, va[i].i);
                b.setI(i, vb[i].i);
            }
        }

        KernelBuilder kb(std::string("op_") + oc.name);
        const int oa = kb.object("a", n, 8, oc.isFloat);
        const int ob = kb.object("b", n, 8, oc.isFloat);
        const int ocid =
            kb.object("c", n, 8, oc.isFloat && !oc.intResult);
        kb.loopStatic(static_cast<std::int64_t>(n));
        auto x = kb.load(oa, kb.affine(0, 1));
        auto y = kb.load(ob, kb.affine(0, 1));
        kb.store(ocid, kb.affine(0, 1), kb.compute(oc.op, x, y));
        const compiler::Kernel kernel = kb.build();

        driver::RunConfig cfg;
        cfg.model = model;
        ExecContext ctx(sys, cfg);
        ctx.invoke(kernel, {a, b, c}, {});

        for (std::uint64_t i = 0; i < n; ++i) {
            const Word want = oc.ref(va[i], vb[i]);
            if (oc.intResult) {
                EXPECT_EQ(c.getI(i), want.i)
                    << oc.name << " i=" << i << " under "
                    << archModelName(model);
            } else {
                EXPECT_EQ(c.getF(i), want.f)
                    << oc.name << " i=" << i << " under "
                    << archModelName(model);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpcodeDifferential,
                         testing::Range<std::size_t>(0, cases().size()),
                         opName);

TEST(OpcodeUnary, AbsSqrtNegSelect)
{
    setInformEnabled(false);
    const std::uint64_t n = 128;
    driver::SystemParams sp;
    driver::System sys(sp);
    auto a = sys.alloc("a", n, 8, true);
    auto out = sys.alloc("out", n, 8, true);
    for (std::uint64_t i = 0; i < n; ++i)
        a.setF(i, (static_cast<double>(i) - 64.0) / 8.0);

    // out[i] = i % 2 ? sqrt(|a|) : -a  (select + fabs + fsqrt + fneg)
    KernelBuilder kb("unary_mix");
    const int oa = kb.object("a", n, 8, true);
    const int oo = kb.object("out", n, 8, true);
    kb.loopStatic(static_cast<std::int64_t>(n));
    auto iv = kb.iv();
    auto odd = kb.compute(OpCode::IAnd, iv, kb.constInt(1));
    auto x = kb.load(oa, kb.affine(0, 1));
    auto sq = kb.compute(OpCode::FSqrt,
                         kb.compute(OpCode::FAbs, x, {}));
    auto ng = kb.compute(OpCode::FNeg, x, {});
    kb.store(oo, kb.affine(0, 1), kb.select(odd, sq, ng));
    const compiler::Kernel kernel = kb.build();

    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    ExecContext ctx(sys, cfg);
    ctx.invoke(kernel, {a, out}, {});
    for (std::uint64_t i = 0; i < n; ++i) {
        const double x = a.getF(i);
        const double want =
            (i % 2) ? std::sqrt(std::fabs(x)) : -x;
        EXPECT_EQ(out.getF(i), want) << i;
    }
}

TEST(OpcodeShift, ShiftsAndConversions)
{
    setInformEnabled(false);
    const std::uint64_t n = 64;
    driver::SystemParams sp;
    driver::System sys(sp);
    auto a = sys.alloc("a", n, 8, false);
    auto out = sys.alloc("out", n, 8, true);
    for (std::uint64_t i = 0; i < n; ++i)
        a.setI(i, static_cast<std::int64_t>(i) + 1);

    // out[i] = double((a[i] << 3) >> 1) + double(int(1.9))
    KernelBuilder kb("shift_cvt");
    const int oa = kb.object("a", n, 8, false);
    const int oo = kb.object("out", n, 8, true);
    kb.loopStatic(static_cast<std::int64_t>(n));
    auto x = kb.load(oa, kb.affine(0, 1));
    auto shl = kb.compute(OpCode::IShl, x, kb.constInt(3));
    auto shr = kb.compute(OpCode::IShr, shl, kb.constInt(1));
    auto as_f = kb.compute(OpCode::I2F, shr, {});
    auto trunc = kb.compute(OpCode::F2I, kb.constFloat(1.9), {});
    kb.store(oo, kb.affine(0, 1),
             kb.fadd(as_f, kb.compute(OpCode::I2F, trunc, {})));
    const compiler::Kernel kernel = kb.build();

    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_F;
    ExecContext ctx(sys, cfg);
    ctx.invoke(kernel, {a, out}, {});
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::int64_t v =
            ((static_cast<std::int64_t>(i) + 1) << 3) >> 1;
        EXPECT_EQ(out.getF(i), static_cast<double>(v) + 1.0) << i;
    }
}
