/**
 * @file
 * Static-verification tests: every pass must fire on a seeded-broken
 * artifact and stay silent on every plan the compiler actually emits.
 * The engine-side rejection of corrupted microcode (the pre-verifier
 * DISTDA_ASSERT safety net) is death-tested, not assumed.
 */

#include <gtest/gtest.h>

#include "death_helpers.hh"
#include "src/compiler/plan.hh"
#include "src/engine/actor.hh"
#include "src/engine/engine.hh"
#include "src/verify/verify.hh"

using namespace distda;
using namespace distda::compiler;

namespace
{

/** A two-object streaming kernel: C[i] = A[i] + A[i+1]. */
Kernel
makeStreamKernel()
{
    KernelBuilder kb("stream");
    const int a = kb.object("A", 1024, 8, true);
    const int c = kb.object("C", 1024, 8, true);
    kb.loopStatic(512);
    auto x = kb.load(a, kb.affine(0, 1));
    auto y = kb.load(a, kb.affine(1, 1));
    kb.store(c, kb.affine(0, 1), kb.fadd(x, y));
    return kb.build();
}

/** Reduction kernel with a carried FP sum. */
Kernel
makeReduceKernel()
{
    KernelBuilder kb("reduce");
    const int a = kb.object("A", 1024, 8, true);
    kb.loopStatic(512);
    auto sum = kb.carry(Word{.f = 0.0}, true);
    auto x = kb.load(a, kb.affine(0, 1));
    kb.setCarry(sum, kb.fadd(sum, x));
    kb.markResult(sum);
    return kb.build();
}

/** Distributed plan of the stream kernel (2 partitions, 1 channel). */
OffloadPlan
distStreamPlan()
{
    OffloadPlan plan = compileKernel(makeStreamKernel());
    EXPECT_EQ(plan.partitions.size(), 2u);
    EXPECT_EQ(plan.channels.size(), 1u);
    return plan;
}

std::size_t
findInst(const MicroProgram &prog, MicroKind kind)
{
    for (std::size_t pc = 0; pc < prog.insts.size(); ++pc) {
        if (prog.insts[pc].kind == kind)
            return pc;
    }
    ADD_FAILURE() << "no instruction of kind "
                  << static_cast<int>(kind);
    return 0;
}

} // namespace

// --- Positive: everything the compiler emits verifies clean. ---

TEST(Verify, CompilerOutputIsCleanDistributed)
{
    const auto report = verify::verifyPlan(distStreamPlan());
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.warningCount(), 0) << report.str();
}

TEST(Verify, CompilerOutputIsCleanMono)
{
    CompileOptions opts;
    opts.partition = false;
    const auto plan = compileKernel(makeStreamKernel(), opts);
    const auto report = verify::verifyPlan(plan, verify::optionsFor(opts));
    EXPECT_TRUE(report.ok()) << report.str();
}

TEST(Verify, CompilerOutputIsCleanUnderCgra)
{
    verify::Options vo;
    vo.checkCgra = true;
    const auto report = verify::verifyPlan(distStreamPlan(), vo);
    EXPECT_TRUE(report.ok()) << report.str();
}

TEST(Verify, PassManagerRegistersAllPasses)
{
    std::vector<std::string> names;
    for (const auto &pass : verify::passes())
        names.push_back(pass.name);
    EXPECT_EQ(names, (std::vector<std::string>{
                         "plan", "microcode", "channels", "cgra",
                         "smells"}));
}

TEST(Verify, ModeNames)
{
    EXPECT_STREQ(verifyModeName(VerifyMode::Off), "off");
    EXPECT_STREQ(verifyModeName(VerifyMode::Warn), "warn");
    EXPECT_STREQ(verifyModeName(VerifyMode::Error), "error");
}

// --- Plan linter negatives. ---

TEST(VerifyPlan, DetectsDuplicatedNode)
{
    OffloadPlan plan = distStreamPlan();
    plan.partitions[0].nodes.push_back(plan.partitions[1].nodes.front());
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.hasErrorFrom("plan"));
    EXPECT_TRUE(report.mentions("duplicated")) << report.str();
}

TEST(VerifyPlan, DetectsLostNode)
{
    OffloadPlan plan = distStreamPlan();
    plan.partitions[1].nodes.pop_back();
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.hasErrorFrom("plan"));
    EXPECT_TRUE(report.mentions("lost")) << report.str();
}

TEST(VerifyPlan, DetectsMultipleObjectsPerPartition)
{
    OffloadPlan plan = distStreamPlan();
    ASSERT_FALSE(plan.partitions[0].accessors.empty());
    plan.partitions[0].accessors[0].objId ^= 1;
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.hasErrorFrom("plan"));
    EXPECT_TRUE(report.mentions("memory objects")) << report.str();
}

TEST(VerifyPlan, DetectsBufferSlotOutsideAllocationTable)
{
    OffloadPlan plan = distStreamPlan();
    ASSERT_FALSE(plan.partitions[0].accessors.empty());
    plan.partitions[0].accessors[0].bufferSlot = 99;
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.hasErrorFrom("plan"));
    EXPECT_TRUE(report.mentions("buffer-allocation table"))
        << report.str();
}

TEST(VerifyPlan, DetectsUnmaterializedCutEdge)
{
    OffloadPlan plan = distStreamPlan();
    plan.channels.clear();
    plan.partitions[0].outChannels.clear();
    plan.partitions[1].inChannels.clear();
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.hasErrorFrom("plan"));
    EXPECT_TRUE(report.mentions("no channel")) << report.str();
}

TEST(VerifyPlan, DetectsCharacteristicsDrift)
{
    OffloadPlan plan = distStreamPlan();
    plan.characteristics.maxInstBytes += 4;
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.hasErrorFrom("plan"));
    EXPECT_TRUE(report.mentions("insts(B)")) << report.str();
}

// --- Microcode verifier negatives. ---

TEST(VerifyMicrocode, DetectsRegisterOutOfRange)
{
    OffloadPlan plan = distStreamPlan();
    MicroProgram &prog = plan.partitions[0].program;
    prog.insts[findInst(prog, MicroKind::Alu)].a = 999;
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.hasErrorFrom("microcode"));
    EXPECT_TRUE(report.mentions("outside register file"))
        << report.str();
}

TEST(VerifyMicrocode, DetectsUseBeforeDefinition)
{
    OffloadPlan plan = distStreamPlan();
    MicroProgram &prog = plan.partitions[0].program;
    const auto fresh = static_cast<std::uint16_t>(prog.numRegs);
    prog.numRegs += 1;
    prog.insts[findInst(prog, MicroKind::Alu)].a = fresh;
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.hasErrorFrom("microcode"));
    EXPECT_TRUE(report.mentions("before definition")) << report.str();
}

TEST(VerifyMicrocode, DetectsAccessorSlotOutOfRange)
{
    OffloadPlan plan = distStreamPlan();
    MicroProgram &prog = plan.partitions[0].program;
    prog.insts[findInst(prog, MicroKind::LoadStream)].slot = 7;
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.hasErrorFrom("microcode"));
    EXPECT_TRUE(report.mentions("accessor slot 7")) << report.str();
}

TEST(VerifyMicrocode, DetectsCarryTypeMismatch)
{
    OffloadPlan plan = compileKernel(makeReduceKernel());
    for (Partition &part : plan.partitions) {
        for (auto &cs : part.program.carries)
            cs.isFloat = !cs.isFloat;
    }
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.hasErrorFrom("microcode"));
    EXPECT_TRUE(report.mentions("float-ness disagrees")) << report.str();
}

TEST(VerifyMicrocode, DetectsInstructionAfterCarryEpilogue)
{
    OffloadPlan plan = compileKernel(makeReduceKernel());
    for (Partition &part : plan.partitions) {
        auto &insts = part.program.insts;
        if (insts.empty() || insts.back().kind != MicroKind::CarryWrite)
            continue;
        MicroInst mov;
        mov.kind = MicroKind::Alu;
        mov.op = OpCode::Mov;
        mov.dst = 0;
        mov.a = 0;
        insts.push_back(mov);
    }
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.hasErrorFrom("microcode"));
    EXPECT_TRUE(report.mentions("after CarryWrite")) << report.str();
}

// --- Channel-graph negatives. ---

TEST(VerifyChannels, DetectsZeroCapacity)
{
    verify::Options vo;
    vo.channelCapacity = 0;
    const auto report = verify::verifyPlan(distStreamPlan(), vo);
    EXPECT_TRUE(report.hasErrorFrom("channels"));
    EXPECT_TRUE(report.mentions("zero decoupling capacity"))
        << report.str();
}

TEST(VerifyChannels, DetectsTokenCountMismatch)
{
    OffloadPlan plan = distStreamPlan();
    MicroProgram &prog = plan.partitions[0].program;
    const std::size_t pc = findInst(prog, MicroKind::Produce);
    prog.insts.erase(prog.insts.begin() +
                     static_cast<std::ptrdiff_t>(pc));
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.hasErrorFrom("channels"));
    EXPECT_TRUE(report.mentions("count mismatch")) << report.str();
}

TEST(VerifyChannels, DetectsFirstIterationDeadlock)
{
    // Add a back channel p1 -> p0 with consume-before-produce program
    // orders on both sides: p0 waits on the back channel before its
    // forward produce, p1 produces the back channel only after its
    // forward consume. No FIFO depth unwedges that.
    OffloadPlan plan = distStreamPlan();
    Partition &p0 = plan.partitions[0];
    Partition &p1 = plan.partitions[1];

    ChannelDef back;
    back.id = static_cast<int>(plan.channels.size());
    back.srcPartition = p1.id;
    back.dstPartition = p0.id;
    back.srcNode = -1;
    back.bits = 64;
    plan.channels.push_back(back);
    p1.outChannels.push_back(back.id);
    p0.inChannels.push_back(back.id);

    MicroInst consume;
    consume.kind = MicroKind::Consume;
    consume.dst = static_cast<std::uint16_t>(p0.program.numRegs++);
    consume.slot = static_cast<int>(p0.inChannels.size()) - 1;
    p0.program.insts.insert(p0.program.insts.begin(), consume);

    MicroInst produce;
    produce.kind = MicroKind::Produce;
    produce.a = consume.dst; // any defined reg would do
    produce.slot = static_cast<int>(p1.outChannels.size()) - 1;
    const std::size_t after =
        findInst(p1.program, MicroKind::Consume) + 1;
    produce.a = p1.program.insts[after - 1].dst;
    p1.program.insts.insert(
        p1.program.insts.begin() + static_cast<std::ptrdiff_t>(after),
        produce);

    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.hasErrorFrom("channels"));
    EXPECT_TRUE(report.mentions("first-iteration deadlock"))
        << report.str();
}

// --- CGRA legality negatives. ---

TEST(VerifyCgra, DetectsMissingFuClass)
{
    verify::Options vo;
    vo.checkCgra = true;
    vo.fabric.floatFus = 0; // stream kernel needs FAdd
    const auto report = verify::verifyPlan(distStreamPlan(), vo);
    EXPECT_TRUE(report.hasErrorFrom("cgra")) << report.str();
}

TEST(VerifyCgra, OffByDefaultAtCompileTime)
{
    // The compile-time integration checks the substrate-independent
    // artifact only; fabric legality is the driver's --verify business.
    EXPECT_FALSE(verify::optionsFor(CompileOptions{}).checkCgra);
}

// --- Smell warnings. ---

TEST(VerifySmells, WarnsOnDeadRegister)
{
    OffloadPlan plan = distStreamPlan();
    MicroProgram &prog = plan.partitions[0].program;
    MicroProgram::ConstReg dead;
    dead.reg = static_cast<std::uint16_t>(prog.numRegs++);
    dead.value = Word{0};
    dead.isFloat = false;
    prog.constRegs.push_back(dead);
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.ok()) << report.str(); // warning, not error
    EXPECT_GT(report.warningCount(), 0);
    EXPECT_TRUE(report.mentions("never read")) << report.str();
}

TEST(VerifySmells, WarnsOnUnreferencedAccessor)
{
    OffloadPlan plan = distStreamPlan();
    MicroProgram &prog = plan.partitions[0].program;
    const std::size_t pc = findInst(prog, MicroKind::LoadStream);
    prog.insts.erase(prog.insts.begin() +
                     static_cast<std::ptrdiff_t>(pc));
    const auto report = verify::verifyPlan(plan);
    EXPECT_TRUE(report.mentions("referenced by no instruction"))
        << report.str();
}

// --- Enforcement and engine-side rejection. ---

TEST(VerifyEnforce, ErrorModePanicsOnBrokenPlan)
{
    OffloadPlan plan = distStreamPlan();
    plan.partitions[0].program.insts[0].dst = 999;
    plan.partitions[0].program.insts[0].kind = MicroKind::Alu;
    plan.partitions[0].program.insts[0].op = OpCode::Mov;
    plan.partitions[0].program.insts[0].a = 0;
    const auto report = verify::verifyPlan(plan);
    ASSERT_FALSE(report.ok());
    EXPECT_PANIC(
        verify::enforce(report, VerifyMode::Error, "test plan"),
        "static verification");
}

TEST(VerifyEnforce, WarnModeProceeds)
{
    OffloadPlan plan = distStreamPlan();
    plan.partitions[0].program.insts[0].dst = 999;
    const auto report = verify::verifyPlan(plan);
    ASSERT_FALSE(report.ok());
    verify::enforce(report, VerifyMode::Warn, "test plan"); // no abort
    verify::enforce(report, VerifyMode::Off, "test plan");
}

namespace
{

/** Construct an actor over @p part with empty-but-sized runtime
 *  wiring, so only seeded corruption can trip the constructor. */
void
constructActor(const Partition &part)
{
    engine::PartitionActor::Config acfg;
    acfg.part = &part;
    std::vector<engine::AccessorRuntime> accs(part.accessors.size());
    std::vector<engine::Channel *> ins(part.inChannels.size(), nullptr);
    std::vector<engine::Channel *> outs(part.outChannels.size(),
                                        nullptr);
    engine::PartitionActor actor(acfg, accs, nullptr, ins, outs, {},
                                 nullptr, nullptr, nullptr, nullptr);
}

} // namespace

TEST(VerifyEngine, ActorAcceptsWellFormedProgram)
{
    const OffloadPlan plan = distStreamPlan();
    constructActor(plan.partitions[0]); // must not panic
}

TEST(VerifyEngine, ActorRejectsCorruptRegisterIndex)
{
    OffloadPlan plan = distStreamPlan();
    Partition &part = plan.partitions[0];
    part.program.insts[0].dst = 5000;
    EXPECT_PANIC(constructActor(part), "out of range");
}

TEST(VerifyEngine, ActorRejectsCorruptSlot)
{
    OffloadPlan plan = distStreamPlan();
    Partition &part = plan.partitions[0];
    MicroProgram &prog = part.program;
    prog.insts[findInst(prog, MicroKind::Produce)].slot = 42;
    EXPECT_PANIC(constructActor(part), "slot 42 out of range");
}

TEST(VerifyEngine, ChannelTopologyMatchesPlan)
{
    const OffloadPlan plan = distStreamPlan();
    engine::EngineConfig ecfg;
    ecfg.channelCapacity = 16;
    engine::DataflowEngine eng(plan, ecfg, nullptr, nullptr, nullptr);
    const auto edges = eng.channelTopology();
    ASSERT_EQ(edges.size(), plan.channels.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
        EXPECT_EQ(edges[i].id, plan.channels[i].id);
        EXPECT_EQ(edges[i].srcPartition, plan.channels[i].srcPartition);
        EXPECT_EQ(edges[i].dstPartition, plan.channels[i].dstPartition);
        EXPECT_EQ(edges[i].elemBytes,
                  static_cast<int>(plan.channels[i].bits / 8));
        EXPECT_EQ(edges[i].capacity, 16);
    }
}
