/**
 * @file
 * Energy-model tests: per-component accounting, conservation (the sum
 * of components equals the total), default-cost ratios that the
 * evaluation's normalized results rest on, and stat export.
 */

#include <gtest/gtest.h>

#include "src/energy/energy_model.hh"

using namespace distda;
using energy::Accountant;
using energy::Component;

TEST(Energy, AddEventsUsesPerComponentCosts)
{
    Accountant acct;
    acct.addEvents(Component::L1, 10.0);
    EXPECT_DOUBLE_EQ(acct.componentPj(Component::L1),
                     10.0 * acct.params().l1AccessPj);
    acct.addEvents(Component::Dram, 2.0);
    EXPECT_DOUBLE_EQ(acct.componentPj(Component::Dram),
                     2.0 * acct.params().dramLinePj);
}

TEST(Energy, TotalIsSumOfComponents)
{
    Accountant acct;
    acct.addEvents(Component::OoOCore, 100.0);
    acct.addEvents(Component::L1, 50.0);
    acct.addEvents(Component::Noc, 25.0);
    acct.add(Component::Buffer, 123.0);
    double sum = 0.0;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Component::NumComponents); ++i)
        sum += acct.componentPj(static_cast<Component>(i));
    EXPECT_DOUBLE_EQ(acct.totalPj(), sum);
}

TEST(Energy, ResetZeroes)
{
    Accountant acct;
    acct.addEvents(Component::L3, 7.0);
    acct.reset();
    EXPECT_DOUBLE_EQ(acct.totalPj(), 0.0);
}

TEST(Energy, CostOrderingMatchesTechnology)
{
    // The normalized results rest on these ratios: DRAM >> L3 > L2 >
    // L1 > ACP > buffer, and OoO inst >> in-order inst >> CGRA op.
    const energy::EnergyParams p;
    EXPECT_GT(p.dramLinePj, 10.0 * p.l3AccessPj);
    EXPECT_GT(p.l3AccessPj, p.l2AccessPj);
    EXPECT_GT(p.l2AccessPj, p.l1AccessPj);
    EXPECT_GT(p.l1AccessPj, p.acpAccessPj);
    EXPECT_GT(p.acpAccessPj, p.bufferAccessPj);
    EXPECT_GT(p.oooPerInstPj, 5.0 * p.ioPerInstPj);
    EXPECT_GT(p.ioPerInstPj, 3.0 * p.cgraPerOpPj);
}

TEST(Energy, ComponentNamesAreUnique)
{
    std::set<std::string> names;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Component::NumComponents); ++i)
        names.insert(
            energy::componentName(static_cast<Component>(i)));
    EXPECT_EQ(names.size(),
              static_cast<std::size_t>(Component::NumComponents));
}

TEST(Energy, ExportIncludesTotal)
{
    Accountant acct;
    acct.addEvents(Component::Mmio, 3.0);
    stats::Group g("sys");
    acct.exportStats(g);
    EXPECT_DOUBLE_EQ(g.get("energy_pj.mmio").value(),
                     3.0 * acct.params().mmioPj);
    EXPECT_DOUBLE_EQ(g.get("energy_pj.total").value(), acct.totalPj());
}

TEST(Energy, CustomParamsRespected)
{
    energy::EnergyParams p;
    p.l1AccessPj = 999.0;
    Accountant acct(p);
    acct.addEvents(Component::L1, 1.0);
    EXPECT_DOUBLE_EQ(acct.componentPj(Component::L1), 999.0);
}
