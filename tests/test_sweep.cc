/**
 * @file
 * Sweep-engine tests: the thread pool, serial-vs-parallel metric
 * equality (the --jobs correctness bar), deterministic result
 * ordering, failure isolation of panicking/fatal()ing jobs, and
 * run-to-run repeatability of runWorkload itself.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>

#include "src/driver/pool.hh"
#include "src/driver/sweep.hh"

using namespace distda;
using driver::ArchModel;
using driver::SweepJob;

namespace
{

/** Three cheap workloads x two configs at smoke scale. */
std::vector<SweepJob>
smokeJobs()
{
    std::vector<SweepJob> jobs;
    for (const char *w : {"sei", "adi", "nw"}) {
        for (ArchModel m : {ArchModel::OoO, ArchModel::DistDA_IO}) {
            SweepJob job;
            job.workload = w;
            job.config.model = m;
            job.options.scale = 0.25;
            jobs.push_back(job);
        }
    }
    return jobs;
}

} // namespace

TEST(Pool, RunsEverySubmittedTask)
{
    driver::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 200);
    // The pool stays usable after a wait().
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 201);
}

TEST(Pool, DestructorDrainsOutstandingTasks)
{
    std::atomic<int> count{0};
    {
        driver::ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(Pool, TasksActuallyRunOffTheCallingThread)
{
    driver::ThreadPool pool(2);
    std::thread::id caller = std::this_thread::get_id();
    std::set<std::thread::id> seen;
    std::mutex mu;
    for (int i = 0; i < 32; ++i) {
        pool.submit([&] {
            std::lock_guard<std::mutex> lk(mu);
            seen.insert(std::this_thread::get_id());
        });
    }
    pool.wait();
    EXPECT_FALSE(seen.empty());
    EXPECT_EQ(seen.count(caller), 0u);
}

TEST(Sweep, DefaultJobCountHonorsEnvironment)
{
    ::setenv("DISTDA_JOBS", "3", 1);
    EXPECT_EQ(driver::defaultJobCount(), 3);
    ::setenv("DISTDA_JOBS", "nonsense", 1);
    EXPECT_GE(driver::defaultJobCount(), 1); // falls back, warns
    ::unsetenv("DISTDA_JOBS");
    EXPECT_GE(driver::defaultJobCount(), 1);
}

TEST(Sweep, DefaultJobCountRejectsMalformedValuesStrictly)
{
    ::unsetenv("DISTDA_JOBS");
    const int fallback = driver::defaultJobCount();

    // Trailing junk must not silently parse as its numeric prefix
    // (the old atoi behavior): "4x" warns and falls back, it does not
    // become 4 workers.
    for (const char *bad : {"4x", "0x10", "", " ", "1 2", "-2", "0"}) {
        ::setenv("DISTDA_JOBS", bad, 1);
        EXPECT_EQ(driver::defaultJobCount(), fallback)
            << "DISTDA_JOBS='" << bad << "'";
    }
    ::setenv("DISTDA_JOBS", "12", 1);
    EXPECT_EQ(driver::defaultJobCount(), 12);
    ::unsetenv("DISTDA_JOBS");
}

TEST(Sweep, SerialAndParallelMetricsAreIdentical)
{
    const auto jobs = smokeJobs();

    driver::SweepOptions serial;
    serial.jobs = 1;
    driver::SweepOptions parallel;
    parallel.jobs = 4;

    const auto a = driver::runSweep(jobs, serial);
    const auto b = driver::runSweep(jobs, parallel);
    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(a[i].ok) << a[i].error;
        ASSERT_TRUE(b[i].ok) << b[i].error;
        // The CSV row covers every reported metric column; identical
        // rows are the tool-level "byte-identical output" guarantee.
        EXPECT_EQ(driver::csvRow(a[i].metrics),
                  driver::csvRow(b[i].metrics));
        EXPECT_DOUBLE_EQ(a[i].metrics.timeNs, b[i].metrics.timeNs);
        EXPECT_DOUBLE_EQ(a[i].metrics.totalEnergyPj,
                         b[i].metrics.totalEnergyPj);
        EXPECT_EQ(a[i].metrics.energyByComponent,
                  b[i].metrics.energyByComponent);
    }
}

TEST(Sweep, ResultsComeBackInJobOrder)
{
    const auto jobs = smokeJobs();
    driver::SweepOptions opts;
    opts.jobs = 4;
    const auto results = driver::runSweep(jobs, opts);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].workload, jobs[i].workload);
        EXPECT_STREQ(results[i].label.c_str(),
                     archModelName(jobs[i].config.model));
    }
}

TEST(Sweep, FailingJobIsIsolatedAndPoolDrains)
{
    std::vector<SweepJob> jobs;
    SweepJob good;
    good.workload = "sei";
    good.config.model = ArchModel::OoO;
    good.options.scale = 0.25;

    SweepJob bad = good;
    bad.workload = "no-such-workload"; // fatal() inside makeWorkload

    jobs.push_back(good);
    jobs.push_back(bad);
    jobs.push_back(good);

    driver::SweepOptions opts;
    opts.jobs = 2;
    const auto results = driver::runSweep(jobs, opts);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("unknown workload"),
              std::string::npos);
    EXPECT_TRUE(results[2].ok);
    EXPECT_FALSE(driver::allOk(results));
    EXPECT_DEATH(driver::dieOnFailures(results), "sweep job");
}

TEST(Sweep, RunWorkloadIsRepeatable)
{
    driver::RunConfig cfg;
    cfg.model = ArchModel::DistDA_IO;
    driver::RunOptions opts;
    opts.scale = 0.25;
    const auto a = driver::runWorkload("sei", cfg, opts);
    const auto b = driver::runWorkload("sei", cfg, opts);
    EXPECT_EQ(driver::csvRow(a), driver::csvRow(b));
    EXPECT_DOUBLE_EQ(a.timeNs, b.timeNs);
    EXPECT_EQ(a.energyByComponent, b.energyByComponent);
}

TEST(Sweep, WallClockFieldsArePopulated)
{
    SweepJob job;
    job.workload = "sei";
    job.config.model = ArchModel::OoO;
    job.options.scale = 0.25;
    const auto results = driver::runSweep({job});
    ASSERT_TRUE(results[0].ok);
    EXPECT_GT(results[0].wallMs, 0.0);
    EXPECT_GT(results[0].metrics.wallMs, 0.0);
    EXPECT_GE(results[0].metrics.wallMs,
              results[0].metrics.setupWallMs);
    EXPECT_GT(results[0].metrics.simRate(), 0.0);
}

TEST(Sweep, LabelOverridesConfigName)
{
    SweepJob job;
    job.workload = "sei";
    job.config.model = ArchModel::DistDA_F;
    job.options.scale = 0.25;
    job.label = "ablation-variant";
    const auto results = driver::runSweep({job});
    ASSERT_TRUE(results[0].ok);
    EXPECT_EQ(results[0].label, "ablation-variant");
    EXPECT_EQ(results[0].metrics.config, "ablation-variant");
}

TEST(Sweep, CsvHeaderMatchesRowArity)
{
    driver::Metrics m;
    m.workload = "w";
    m.config = "c";
    const std::string header = driver::csvHeader();
    const std::string row = driver::csvRow(m);
    const auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row));
}

TEST(Logging, FailureCaptureConvertsFatalAndPanic)
{
    EXPECT_FALSE(ScopedFailureCapture::active());
    {
        ScopedFailureCapture capture;
        EXPECT_TRUE(ScopedFailureCapture::active());
        try {
            fatal("user error %d", 7);
            FAIL() << "fatal() returned";
        } catch (const SimFailure &e) {
            EXPECT_FALSE(e.isPanic());
            EXPECT_NE(std::string(e.what()).find("user error 7"),
                      std::string::npos);
        }
        try {
            panic("invariant %s", "broken");
            FAIL() << "panic() returned";
        } catch (const SimFailure &e) {
            EXPECT_TRUE(e.isPanic());
        }
    }
    EXPECT_FALSE(ScopedFailureCapture::active());
    // Without a capture guard fatal() still terminates the process.
    EXPECT_DEATH(fatal("boom"), "boom");
}
