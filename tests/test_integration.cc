/**
 * @file
 * End-to-end integration: every Table IV workload runs to completion
 * under every tested architecture configuration and its outputs match
 * the native reference ("all our applications with accelerator
 * offloads are validated by execution until program completion").
 */

#include <gtest/gtest.h>

#include "src/driver/runner.hh"
#include "src/sim/logging.hh"
#include "src/workloads/workload.hh"

using namespace distda;

namespace
{

struct Case
{
    std::string workload;
    driver::ArchModel model;
};

std::string
caseName(const testing::TestParamInfo<Case> &info)
{
    std::string name = info.param.workload + "_" +
                       driver::archModelName(info.param.model);
    for (char &c : name) {
        if (c == '-' || c == '+')
            c = '_';
    }
    return name;
}

class WorkloadConfig : public testing::TestWithParam<Case>
{
};

TEST_P(WorkloadConfig, ValidatesAndProgresses)
{
    setInformEnabled(false);
    driver::RunConfig cfg;
    cfg.model = GetParam().model;
    driver::RunOptions opts;
    opts.scale = 0.25; // small inputs keep the suite fast

    driver::Metrics m =
        driver::runWorkload(GetParam().workload, cfg, opts);

    EXPECT_TRUE(m.validated) << GetParam().workload << " under "
                             << archModelName(cfg.model);
    EXPECT_GT(m.timeNs, 0.0);
    EXPECT_GT(m.totalEnergyPj, 0.0);
    EXPECT_GT(m.kernelMemOps, 0.0);
    if (cfg.usesAccelerator()) {
        EXPECT_GT(m.accelInsts, 0.0);
        EXPECT_GT(m.mmioOps, 0.0);
        EXPECT_GT(m.daBytes + m.intraBytes, 0.0);
    } else {
        EXPECT_EQ(m.accelInsts, 0.0);
    }
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const std::string &w : workloads::workloadNames()) {
        for (driver::ArchModel m : driver::headlineModels())
            cases.push_back({w, m});
        cases.push_back({w, driver::ArchModel::DistDA_IO_SW});
        cases.push_back({w, driver::ArchModel::DistDA_F_A});
    }
    for (driver::ArchModel m : driver::headlineModels())
        cases.push_back({"spmv", m});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadConfig,
                         testing::ValuesIn(allCases()), caseName);

} // namespace
