/**
 * @file
 * Case-study tests (§VI-D): the hand-scheduled spmv and nw variants
 * validate against their references and reproduce the paper's ordering
 * (B is slower than the host-amortized variants; BN and BNS recover
 * and beat it); the multithreading model scales with thread count.
 */

#include <gtest/gtest.h>

#include "src/casestudy/case_spmv.hh"
#include "src/casestudy/multithread.hh"
#include "src/sim/logging.hh"

using namespace distda;

TEST(CaseSpmv, AllVariantsValidate)
{
    setInformEnabled(false);
    const auto results = casestudy::runSpmvCaseStudy(0.25);
    ASSERT_EQ(results.size(), 4u);
    for (const auto &r : results)
        EXPECT_TRUE(r.validated) << r.config;
}

TEST(CaseSpmv, PaperOrderingHolds)
{
    setInformEnabled(false);
    const auto results = casestudy::runSpmvCaseStudy(0.25);
    const double ooo = results[0].timeNs;
    const double b = results[1].timeNs;
    const double bn = results[2].timeNs;
    const double bns = results[3].timeNs;
    // Fig 12a: B fails to amortize (slower than OoO); BN pipelines the
    // loop nest past OoO; BNS's staged schedule is fastest.
    EXPECT_GT(b, ooo);
    EXPECT_LT(bn, ooo);
    EXPECT_LE(bns, bn);
}

TEST(CaseNw, AllVariantsValidate)
{
    setInformEnabled(false);
    const auto results = casestudy::runNwCaseStudy(0.25);
    ASSERT_EQ(results.size(), 4u);
    for (const auto &r : results)
        EXPECT_TRUE(r.validated) << r.config;
}

TEST(CaseNw, BlockedNestBeatsPerRowOffload)
{
    setInformEnabled(false);
    const auto results = casestudy::runNwCaseStudy(0.25);
    const double b = results[1].timeNs;
    const double bn = results[2].timeNs;
    const double bns = results[3].timeNs;
    EXPECT_LT(bn, b);
    EXPECT_LE(bns, bn * 1.05);
}

TEST(CaseMultithread, SpeedupScalesWithThreads)
{
    setInformEnabled(false);
    const auto results = casestudy::runMultithreadCaseStudy(0.25);
    ASSERT_FALSE(results.empty());
    // Per (workload, config): Fig 12b's "execution time reduces as
    // the number of threads is increased" — near-monotonic per step
    // (the T=1->2 step of accelerator pathfinder pays the
    // specialization loss, so a small wobble is allowed) and a clear
    // win at 8 threads.
    for (std::size_t i = 0; i + 3 < results.size(); i += 4) {
        EXPECT_EQ(results[i].threads, 1);
        for (int t = 0; t < 3; ++t) {
            EXPECT_LT(results[i + static_cast<std::size_t>(t) + 1]
                          .timeNs,
                      results[i + static_cast<std::size_t>(t)].timeNs *
                          1.05)
                << results[i].workload << " " << results[i].config;
        }
        EXPECT_LT(results[i + 3].timeNs, results[i].timeNs * 0.6);
    }
}

TEST(CaseMultithread, PathfinderScalesSubLinearly)
{
    setInformEnabled(false);
    const auto results = casestudy::runMultithreadCaseStudy(0.25);
    // Find pf / Dist-DA-IO rows: skipping the stream-specialization
    // step under MT (§VI-D) keeps its 8-thread scaling well under 8x.
    for (std::size_t i = 0; i + 3 < results.size(); i += 4) {
        if (results[i].workload == "pf" &&
            results[i].config == "Dist-DA-IO") {
            const double scaling =
                results[i].timeNs / results[i + 3].timeNs;
            EXPECT_LT(scaling, 7.0);
            EXPECT_GT(scaling, 1.5);
        }
    }
}
