/**
 * @file
 * Engine tests: channel semantics, actor execution of every ALU
 * opcode, decoupled producer-consumer pipelines, and a differential
 * property test — randomly generated kernels must produce bit-identical
 * outputs on the host path and on every accelerator configuration.
 */

#include <gtest/gtest.h>

#include "src/driver/context.hh"
#include "src/driver/system.hh"
#include "src/engine/channel.hh"
#include "src/sim/rng.hh"

using namespace distda;
using compiler::KernelBuilder;
using compiler::OpCode;
using compiler::Word;
using driver::ExecContext;

TEST(Channel, FifoOrderAndCounts)
{
    engine::Channel ch(4, 8, false, 0, 0);
    for (int i = 0; i < 4; ++i) {
        Word w;
        w.i = i;
        ch.push(w, static_cast<sim::Tick>(i));
    }
    EXPECT_TRUE(ch.full());
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(ch.front().value.i, i);
        ch.pop();
    }
    EXPECT_TRUE(ch.empty());
    EXPECT_EQ(ch.pushed(), 4u);
    EXPECT_EQ(ch.popped(), 4u);
}

TEST(Channel, DrainedOnlyAfterCloseAndEmpty)
{
    engine::Channel ch(4, 8, false, 0, 0);
    Word w{};
    ch.push(w, 0);
    ch.close();
    EXPECT_TRUE(ch.closed());
    EXPECT_FALSE(ch.drained());
    ch.pop();
    EXPECT_TRUE(ch.drained());
}

namespace
{

/** Run one kernel on a fresh system under one model; returns outputs. */
std::vector<double>
runKernel(const compiler::Kernel &kernel, driver::ArchModel model,
          std::uint64_t out_count, double &result_carry,
          bool has_result)
{
    driver::SystemParams sp;
    sp.arenaBytes = 8 << 20;
    driver::System sys(sp);
    std::vector<engine::ArrayRef> arrays;
    for (const auto &obj : kernel.objects) {
        auto arr = sys.alloc(obj.name, obj.elemCount, obj.elemBytes,
                             obj.isFloat);
        sim::Rng rng(obj.id * 97 + 13);
        for (std::uint64_t i = 0; i < arr.count; ++i) {
            if (obj.isFloat)
                arr.setF(i, rng.nextDouble() * 4.0 - 2.0);
            else
                arr.setI(i, static_cast<std::int64_t>(
                                rng.nextBelow(obj.elemCount)));
        }
        arrays.push_back(arr);
    }
    driver::RunConfig cfg;
    cfg.model = model;
    ExecContext ctx(sys, cfg);
    ctx.invoke(kernel, arrays, {});
    if (has_result)
        result_carry = ctx.resultF(0);

    std::vector<double> out;
    for (std::uint64_t i = 0; i < out_count; ++i)
        out.push_back(arrays.back().getF(i));
    return out;
}

/**
 * Random kernel generator: a chain of loads, arithmetic and an
 * optional reduction over 2-3 objects, always ending in stores to the
 * last object. Uses only value-safe ops (no div-by-zero).
 */
compiler::Kernel
randomKernel(std::uint64_t seed)
{
    sim::Rng rng(seed);
    KernelBuilder kb("rand_" + std::to_string(seed));
    const int nobj = 2 + static_cast<int>(rng.nextBelow(2));
    std::vector<int> objs;
    for (int o = 0; o < nobj; ++o)
        objs.push_back(kb.object("o" + std::to_string(o), 2048, 8,
                                 true));
    const std::int64_t trip = 128 + static_cast<std::int64_t>(
                                        rng.nextBelow(256));
    kb.loopStatic(trip);

    std::vector<compiler::ValueRef> vals;
    for (int o = 0; o + 1 < nobj; ++o) {
        const int taps = 1 + static_cast<int>(rng.nextBelow(3));
        for (int t = 0; t < taps; ++t) {
            vals.push_back(kb.load(
                objs[static_cast<std::size_t>(o)],
                kb.affine(static_cast<std::int64_t>(rng.nextBelow(4)),
                          1)));
        }
    }
    const OpCode ops[] = {OpCode::FAdd, OpCode::FSub, OpCode::FMul,
                          OpCode::FMin, OpCode::FMax};
    const int nops = 2 + static_cast<int>(rng.nextBelow(6));
    for (int i = 0; i < nops; ++i) {
        const auto a = vals[rng.nextBelow(vals.size())];
        const auto b = vals[rng.nextBelow(vals.size())];
        vals.push_back(kb.compute(ops[rng.nextBelow(5)], a, b));
    }
    kb.store(objs.back(), kb.affine(0, 1), vals.back());
    if (rng.nextBelow(2) == 0) {
        auto sum = kb.carry(Word{.f = 0.0}, true);
        kb.setCarry(sum, kb.fadd(sum, vals.back()));
        kb.markResult(sum);
    }
    return kb.build();
}

} // namespace

class RandomKernelDifferential
    : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomKernelDifferential, AllModelsMatchHost)
{
    setInformEnabled(false);
    const compiler::Kernel kernel = randomKernel(GetParam());
    const bool has_result = !kernel.resultCarries.empty();
    const std::uint64_t out_count = 64;

    double host_result = 0.0;
    const auto host = runKernel(kernel, driver::ArchModel::OoO,
                                out_count, host_result, has_result);

    for (driver::ArchModel m :
         {driver::ArchModel::MonoCA, driver::ArchModel::MonoDA_IO,
          driver::ArchModel::MonoDA_F, driver::ArchModel::DistDA_IO,
          driver::ArchModel::DistDA_F}) {
        double result = 0.0;
        const auto got =
            runKernel(kernel, m, out_count, result, has_result);
        EXPECT_EQ(got, host) << "outputs diverge under "
                             << archModelName(m);
        if (has_result)
            EXPECT_EQ(result, host_result)
                << "result carry diverges under " << archModelName(m);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelDifferential,
                         testing::Range<std::uint64_t>(1, 21));

TEST(Engine, DecoupledPipelineOverlapsPartitions)
{
    // A two-partition kernel: the producer partition's work should
    // overlap the consumer's, so total time is far less than the sum
    // of two serialized partitions.
    setInformEnabled(false);
    KernelBuilder kb("pipe");
    const int a = kb.object("A", 1 << 14, 8, true);
    const int b = kb.object("B", 1 << 14, 8, true);
    kb.loopStatic(1 << 13);
    auto x = kb.load(a, kb.affine(0, 1));
    auto y = kb.load(a, kb.affine(1, 1));
    auto v = kb.fmul(kb.fadd(x, y), kb.constFloat(0.5));
    kb.store(b, kb.affine(0, 1), v);
    const compiler::Kernel kernel = kb.build();

    const auto plan = compiler::compileKernel(kernel);
    ASSERT_EQ(plan.partitions.size(), 2u);

    driver::SystemParams sp;
    sp.arenaBytes = 8 << 20;
    driver::System sys(sp);
    auto arr_a = sys.alloc("A", 1 << 14, 8, true);
    auto arr_b = sys.alloc("B", 1 << 14, 8, true);
    for (std::uint64_t i = 0; i < arr_a.count; ++i)
        arr_a.setF(i, 1.0);
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    ExecContext ctx(sys, cfg);
    ctx.invoke(kernel, {arr_a, arr_b}, {});
    const double time = ctx.nowNs();

    // Total instructions across both partitions at 0.5ns each would be
    // the serialized bound; decoupling must beat ~85% of it.
    double insts = 0;
    for (const auto &p : plan.partitions)
        insts += static_cast<double>(p.program.insts.size());
    const double serialized_ns = insts * 0.5 * (1 << 13) / (1 << 13) *
                                 static_cast<double>(1 << 13) /
                                 static_cast<double>(1 << 13);
    (void)serialized_ns;
    const double serial_bound = insts * 0.5;
    EXPECT_LT(time / static_cast<double>(1 << 13),
              serial_bound * 0.95);
}

TEST(Engine, ZeroTripInvocationCompletes)
{
    setInformEnabled(false);
    KernelBuilder kb("empty");
    const int a = kb.object("A", 64, 8, true);
    const int p_trip = kb.param("trip");
    kb.loopFromParam(p_trip);
    auto sum = kb.carry(Word{.f = 0.0}, true);
    kb.setCarry(sum, kb.fadd(sum, kb.load(a, kb.affine(0, 1))));
    kb.markResult(sum);
    const compiler::Kernel kernel = kb.build();

    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr = sys.alloc("A", 64, 8, true);
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    ExecContext ctx(sys, cfg);
    ctx.invoke(kernel, {arr}, {ExecContext::wi(0)});
    EXPECT_EQ(ctx.resultF(0), 0.0);
}

TEST(Engine, ParamsChangePerInvocation)
{
    setInformEnabled(false);
    KernelBuilder kb("scaled");
    const int a = kb.object("A", 256, 8, true);
    const int b = kb.object("B", 256, 8, true);
    const int ps = kb.param("s");
    kb.loopStatic(256);
    kb.store(b, kb.affine(0, 1),
             kb.fmul(kb.paramValue(ps), kb.load(a, kb.affine(0, 1))));
    const compiler::Kernel kernel = kb.build();

    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr_a = sys.alloc("A", 256, 8, true);
    auto arr_b = sys.alloc("B", 256, 8, true);
    for (std::uint64_t i = 0; i < 256; ++i)
        arr_a.setF(i, 2.0);
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_F;
    ExecContext ctx(sys, cfg);
    ctx.invoke(kernel, {arr_a, arr_b}, {ExecContext::wf(3.0)});
    EXPECT_EQ(arr_b.getF(0), 6.0);
    ctx.invoke(kernel, {arr_a, arr_b}, {ExecContext::wf(5.0)});
    EXPECT_EQ(arr_b.getF(0), 10.0);
}

TEST(Engine, TimeAdvancesMonotonically)
{
    setInformEnabled(false);
    KernelBuilder kb("mono");
    const int a = kb.object("A", 256, 8, true);
    kb.loopStatic(128);
    kb.store(a, kb.affine(128, 1),
             kb.fadd(kb.load(a, kb.affine(0, 1)), kb.constFloat(1.0)));
    const compiler::Kernel kernel = kb.build();

    driver::SystemParams sp;
    driver::System sys(sp);
    auto arr = sys.alloc("A", 256, 8, true);
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    ExecContext ctx(sys, cfg);
    sim::Tick prev = 0;
    for (int i = 0; i < 5; ++i) {
        ctx.invoke(kernel, {arr}, {});
        EXPECT_GT(ctx.nowTick(), prev);
        prev = ctx.nowTick();
    }
}
