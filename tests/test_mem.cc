/**
 * @file
 * Unit tests for the memory substrate: cache tag/LRU/writeback/MSHR
 * behaviour, the stride prefetcher, DRAM row-buffer timing, the slab
 * allocator with page coloring, the object translation table, NUCA
 * cluster mapping and the assembled hierarchy.
 */

#include <gtest/gtest.h>

#include "death_helpers.hh"
#include "src/mem/cache.hh"
#include "src/mem/dram.hh"
#include "src/mem/hierarchy.hh"
#include "src/mem/nuca_l3.hh"
#include "src/mem/slab_allocator.hh"

using namespace distda;
using mem::Addr;

namespace
{

/** A downstream that records fills and returns a fixed latency. */
struct FakeDownstream
{
    std::vector<std::pair<Addr, bool>> calls;
    sim::Tick latency = 20000;

    sim::Tick
    operator()(Addr a, bool w, sim::Tick)
    {
        calls.push_back({a, w});
        return latency;
    }

    mem::Cache::Downstream fn() { return mem::Cache::Downstream::of(*this); }
};

mem::CacheParams
smallCache()
{
    mem::CacheParams p;
    p.name = "test";
    p.sizeBytes = 1024; // 16 lines
    p.assoc = 2;        // 8 sets
    p.latencyCycles = 1;
    p.mshrs = 2;
    return p;
}

} // namespace

TEST(Cache, MissThenHit)
{
    energy::Accountant acct;
    FakeDownstream down;
    mem::Cache cache(smallCache(), &acct, down.fn());

    auto r1 = cache.access(0x1000, 8, false, 0);
    EXPECT_FALSE(r1.hit);
    EXPECT_GE(r1.latency, down.latency);

    auto r2 = cache.access(0x1008, 8, false, r1.latency);
    EXPECT_TRUE(r2.hit); // same line
    EXPECT_LT(r2.latency, down.latency);
    EXPECT_EQ(cache.misses(), 1.0);
    EXPECT_EQ(cache.hits(), 1.0);
}

TEST(Cache, LruEvictsOldest)
{
    energy::Accountant acct;
    FakeDownstream down;
    mem::Cache cache(smallCache(), &acct, down.fn());

    // Three lines mapping to the same set (8 sets, line 64B):
    // line numbers 0, 8, 16 -> set 0 with assoc 2.
    cache.access(0 * 64, 8, false, 0);
    cache.access(8 * 64, 8, false, 100000);
    EXPECT_TRUE(cache.contains(0 * 64));
    cache.access(16 * 64, 8, false, 200000); // evicts line 0 (LRU)
    EXPECT_FALSE(cache.contains(0 * 64));
    EXPECT_TRUE(cache.contains(8 * 64));
    EXPECT_TRUE(cache.contains(16 * 64));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    energy::Accountant acct;
    FakeDownstream down;
    mem::Cache cache(smallCache(), &acct, down.fn());

    cache.access(0 * 64, 8, true, 0); // miss + dirty
    down.calls.clear();
    cache.access(8 * 64, 8, false, 100000);
    cache.access(16 * 64, 8, false, 200000); // evicts dirty line 0
    bool wrote_back = false;
    for (const auto &[a, w] : down.calls)
        wrote_back |= (w && a == 0);
    EXPECT_TRUE(wrote_back);
    EXPECT_EQ(cache.writebacks(), 1.0);
}

TEST(Cache, FlushWritesDirtyAndInvalidates)
{
    energy::Accountant acct;
    FakeDownstream down;
    mem::Cache cache(smallCache(), &acct, down.fn());
    cache.access(0x0, 8, true, 0);
    down.calls.clear();
    cache.flush(1000);
    EXPECT_EQ(down.calls.size(), 1u);
    EXPECT_TRUE(down.calls[0].second);
    EXPECT_FALSE(cache.contains(0x0));
}

TEST(Cache, MshrsQueueConcurrentMisses)
{
    energy::Accountant acct;
    FakeDownstream down;
    mem::Cache cache(smallCache(), &acct, down.fn()); // 2 MSHRs

    // Three misses at the same instant: the third waits for a slot.
    auto a = cache.access(0 * 64, 8, false, 0);
    auto b = cache.access(8 * 64, 8, false, 0);
    auto c = cache.access(1 * 64, 8, false, 0);
    EXPECT_GE(a.latency, down.latency);
    EXPECT_GE(b.latency, down.latency);
    EXPECT_GE(c.latency, a.latency + down.latency);
}

TEST(Cache, MultiLineAccessTouchesEachLine)
{
    energy::Accountant acct;
    FakeDownstream down;
    mem::Cache cache(smallCache(), &acct, down.fn());
    cache.access(0, 256, false, 0); // 4 lines
    EXPECT_EQ(cache.accesses(), 4.0);
    EXPECT_EQ(down.calls.size(), 4u);
}

TEST(Cache, StridePrefetcherFetchesAhead)
{
    energy::Accountant acct;
    FakeDownstream down;
    mem::CacheParams p = smallCache();
    p.sizeBytes = 8 * 1024;
    p.stridePrefetch = true;
    mem::Cache cache(p, &acct, down.fn());

    // A steady +1-line stride stream trains after 2 confirmations.
    sim::Tick now = 0;
    for (int i = 0; i < 6; ++i) {
        cache.access(static_cast<Addr>(i) * 64, 8, false, now);
        now += 100000;
    }
    EXPECT_GT(cache.prefetchesIssued(), 0.0);
    // Lines ahead of the stream should now be resident.
    EXPECT_TRUE(cache.contains(7 * 64));
}

TEST(Cache, MruFilterSelfInvalidatesOnEviction)
{
    // Direct-mapped so a conflicting line reuses the exact Line slot
    // the MRU filter points at: a stale filter entry must re-probe,
    // never produce a false hit.
    energy::Accountant acct;
    FakeDownstream down;
    mem::CacheParams p = smallCache();
    p.assoc = 1; // 16 sets; lines 0 and 16 collide in set 0
    mem::Cache cache(p, &acct, down.fn());

    cache.access(0 * 64, 8, false, 0);       // miss, fills set 0
    auto hit = cache.access(0 * 64, 8, false, 100000); // MRU hit
    EXPECT_TRUE(hit.hit);
    cache.access(16 * 64, 8, false, 200000); // conflict miss, evicts
    auto after = cache.access(0 * 64, 8, false, 300000);
    EXPECT_FALSE(after.hit); // stale MRU slot now holds line 16
    EXPECT_EQ(cache.hits(), 1.0);
    EXPECT_EQ(cache.misses(), 3.0);
}

TEST(Cache, PrefetchHitsCountOncePerPrefetchedLine)
{
    energy::Accountant acct;
    FakeDownstream down;
    mem::CacheParams p = smallCache();
    p.sizeBytes = 8 * 1024;
    p.stridePrefetch = true;
    mem::Cache cache(p, &acct, down.fn());

    // Train a +1-line stride until the prefetcher runs ahead.
    sim::Tick now = 0;
    for (int i = 0; i < 6; ++i) {
        cache.access(static_cast<Addr>(i) * 64, 8, false, now);
        now += 100000;
    }
    ASSERT_GT(cache.prefetchesIssued(), 0.0);
    ASSERT_TRUE(cache.contains(7 * 64));

    // First demand access of the prefetched line counts exactly once.
    const double before = cache.prefetchHits();
    auto r = cache.access(7 * 64, 8, false, now);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(cache.prefetchHits(), before + 1.0);
    cache.access(7 * 64, 8, false, now + 100000);
    EXPECT_EQ(cache.prefetchHits(), before + 1.0); // not recounted
}

TEST(Cache, SetHashSpreadsInterleavedPages)
{
    // Without hashing, lines at page stride x8 collide into few sets;
    // with hashing a working set smaller than capacity must fit.
    energy::Accountant acct;
    FakeDownstream down;
    mem::CacheParams p;
    p.sizeBytes = 256 * 1024;
    p.assoc = 16;
    p.setHash = true;
    mem::Cache cache(p, &acct, down.fn());

    // 256KB worth of lines spaced as cluster-0 pages (every 8th 4KB
    // page), i.e. the NUCA bank's view.
    std::vector<Addr> addrs;
    for (Addr page = 0; page < 8 * 512; page += 8)
        for (Addr off = 0; off < 4096; off += 1024)
            addrs.push_back(page * 4096 + off);
    for (Addr a : addrs)
        cache.access(a, 8, false, 0);
    const double cold = cache.misses();
    for (Addr a : addrs)
        cache.access(a, 8, false, 1000000);
    // A second pass over a <=capacity working set is nearly all hits.
    EXPECT_LT(cache.misses() - cold, cold * 0.05);
}

TEST(Dram, RowHitsAreFaster)
{
    energy::Accountant acct;
    mem::Dram dram(mem::DramParams{}, &acct);
    const sim::Tick miss = dram.access(0, false, 0);
    const sim::Tick hit = dram.access(64, false, miss + 1000000);
    EXPECT_LT(hit, miss);
    EXPECT_EQ(dram.rowHits(), 1.0);
    EXPECT_EQ(dram.rowMisses(), 1.0);
}

TEST(Dram, BankConflictSerializes)
{
    energy::Accountant acct;
    mem::DramParams p;
    mem::Dram dram(p, &acct);
    // Same bank, different rows, at the same instant.
    const Addr row_a = 0;
    const Addr row_b = static_cast<Addr>(p.rowBytes) *
                       static_cast<Addr>(p.banks);
    const sim::Tick a = dram.access(row_a, false, 0);
    const sim::Tick b = dram.access(row_b, false, 0);
    EXPECT_GT(b, a);
}

TEST(Dram, EnergyChargedPerLine)
{
    energy::Accountant acct;
    mem::Dram dram(mem::DramParams{}, &acct);
    dram.access(0, false, 0);
    dram.access(4096, true, 0);
    EXPECT_DOUBLE_EQ(acct.componentPj(energy::Component::Dram),
                     2.0 * acct.params().dramLinePj);
}

TEST(Slab, RoundsToClassesAndRecycles)
{
    mem::SlabAllocator slab(0x1000'0000, 1 << 20);
    const Addr a = slab.allocate(1000, "a"); // -> 4KB class
    const Addr b = slab.allocate(5000, "b"); // -> 8KB class
    EXPECT_NE(a, b);
    slab.free(a);
    const Addr c = slab.allocate(2000, "c"); // reuses a's 4KB slab
    EXPECT_EQ(c, a);
    EXPECT_EQ(slab.liveAllocations(), 2u);
    (void)b;
}

TEST(Slab, PageColoringStaggersClusters)
{
    mem::SlabAllocator slab(0x1000'0000, 8 << 20);
    // Power-of-two allocations must not all share (addr/4096) % 8.
    std::set<Addr> colors;
    for (int i = 0; i < 8; ++i) {
        const Addr a = slab.allocate(32 * 1024, "arr");
        colors.insert((a / 4096) % 8);
    }
    EXPECT_GT(colors.size(), 1u);
}

TEST(Slab, FindLocatesAllocation)
{
    mem::SlabAllocator slab(0x1000'0000, 1 << 20);
    const Addr a = slab.allocate(8192, "x");
    const auto *alloc = slab.find(a + 100);
    ASSERT_NE(alloc, nullptr);
    EXPECT_EQ(alloc->name, "x");
    EXPECT_EQ(slab.find(a + 16 * 1024), nullptr);
}

TEST(Slab, ExhaustionIsFatal)
{
    // Individually in-range requests that together overrun the arena
    // trip the bump-region exhaustion check; a single request larger
    // than the arena is rejected earlier (see
    // OverflowingSizeIsFatalNotWrapped).
    mem::SlabAllocator slab(0x1000'0000, 64 * 1024);
    (void)slab.allocate(32 * 1024, "a");
    EXPECT_PANIC((void)slab.allocate(32 * 1024, "b"), "exhausted");
}

TEST(Slab, ZeroByteAllocationIsFatal)
{
    mem::SlabAllocator slab(0x1000'0000, 1 << 20);
    EXPECT_PANIC((void)slab.allocate(0, "empty"), "zero-byte");
}

TEST(Slab, OverflowingSizeIsFatalNotWrapped)
{
    // Near-UINT64_MAX requests used to wrap during slab rounding and
    // hand back a tiny range aliasing a later allocation; they must be
    // rejected before rounding instead.
    mem::SlabAllocator slab(0x1000'0000, 1 << 20);
    EXPECT_PANIC((void)slab.allocate(~0ULL, "wrap"), "exceeds");
    EXPECT_PANIC((void)slab.allocate(~0ULL - 4000, "wrap2"), "exceeds");
    EXPECT_PANIC((void)slab.allocate((1 << 20) + 1, "over"), "exceeds");
}

TEST(ObjectTable, TranslatesOffsets)
{
    mem::ObjectTable table;
    table.registerObject(3, 0x2000, 100, 8, "arr");
    EXPECT_EQ(table.addrOf(3, 0), 0x2000u);
    EXPECT_EQ(table.addrOf(3, 99), 0x2000u + 99 * 8);
    EXPECT_EQ(table.elemBytes(3), 8u);
    table.unregisterObject(3);
    EXPECT_FALSE(table.contains(3));
}

TEST(ObjectTable, OutOfRangePanics)
{
    mem::ObjectTable table;
    table.registerObject(0, 0x2000, 10, 8, "arr");
    EXPECT_DEATH((void)table.addrOf(0, 10), "out of");
}

TEST(Nuca, PageInterleaveCoversAllClusters)
{
    energy::Accountant acct;
    noc::Mesh mesh(noc::MeshParams{}, &acct);
    mem::Dram dram(mem::DramParams{}, &acct);
    mem::NucaL3 l3(mem::NucaParams{}, &mesh, &dram, &acct);
    const Addr granule = mem::NucaParams{}.pageBytes;
    std::set<int> clusters;
    for (Addr page = 0; page < 64; ++page)
        clusters.insert(l3.clusterOf(page * granule));
    EXPECT_EQ(clusters.size(), 8u);
    // Within a granule, the cluster is constant.
    EXPECT_EQ(l3.clusterOf(granule + 64),
              l3.clusterOf(2 * granule - 64));
}

TEST(Nuca, AffinityOverridesInterleave)
{
    energy::Accountant acct;
    noc::Mesh mesh(noc::MeshParams{}, &acct);
    mem::Dram dram(mem::DramParams{}, &acct);
    mem::NucaL3 l3(mem::NucaParams{}, &mesh, &dram, &acct);
    l3.setAffinity(0x10000, 64 * 1024, 5);
    for (Addr a = 0x10000; a < 0x10000 + 64 * 1024; a += 4096)
        EXPECT_EQ(l3.clusterOf(a), 5);
    l3.clearAffinity();
    // Back to interleaving: a different granule maps elsewhere.
    EXPECT_NE(l3.clusterOf(0x10000 + 16384), l3.clusterOf(0x10000));
}

TEST(Nuca, RemoteAccessRidesNoc)
{
    energy::Accountant acct;
    noc::Mesh mesh(noc::MeshParams{}, &acct);
    mem::Dram dram(mem::DramParams{}, &acct);
    mem::NucaL3 l3(mem::NucaParams{}, &mesh, &dram, &acct);
    const Addr a = 0x9000; // page 9 -> cluster 1
    const int home = l3.clusterOf(a);
    const int remote = (home + 4) % 8;
    // Warm the line so both measured accesses are bank hits.
    l3.access(a, 64, false, home, 0, mem::TrafficTag{});
    const double before = mesh.totalBytes();
    auto local = l3.access(a, 64, false, home, 1000000,
                           mem::TrafficTag{});
    EXPECT_DOUBLE_EQ(mesh.totalBytes(), before);
    auto far = l3.access(a, 64, false, remote, 2000000,
                         mem::TrafficTag{});
    EXPECT_GT(mesh.totalBytes(), before);
    EXPECT_GT(far.latency, local.latency);
}

TEST(Hierarchy, HostWalkCountsEveryLevel)
{
    energy::Accountant acct;
    mem::Hierarchy hier(mem::HierarchyParams{}, &acct);
    hier.hostAccess(0x4000, 8, false, 0);
    EXPECT_EQ(hier.l1().accesses(), 1.0);
    EXPECT_EQ(hier.l1().misses(), 1.0);
    EXPECT_EQ(hier.l2().misses(), 1.0);
    EXPECT_EQ(hier.l3().totalMisses(), 1.0);
    EXPECT_EQ(hier.dram().reads(), 1.0);

    // Second access: L1 hit, nothing deeper.
    const double l2_before = hier.l2().accesses();
    hier.hostAccess(0x4000, 8, false, 1000000);
    EXPECT_EQ(hier.l1().hits(), 1.0);
    EXPECT_EQ(hier.l2().accesses(), l2_before);
}

TEST(Hierarchy, AccelPathSkipsL1L2)
{
    energy::Accountant acct;
    mem::Hierarchy hier(mem::HierarchyParams{}, &acct);
    hier.accelAccess(0x4000, 64, false, 2, 0);
    EXPECT_EQ(hier.l1().accesses(), 0.0);
    EXPECT_EQ(hier.l2().accesses(), 0.0);
    EXPECT_EQ(hier.acp(2).accesses(), 1.0);
    EXPECT_EQ(hier.l3().totalAccesses(), 1.0);
}

TEST(Hierarchy, CacheAccessTotalsSum)
{
    energy::Accountant acct;
    mem::Hierarchy hier(mem::HierarchyParams{}, &acct);
    hier.hostAccess(0x4000, 8, false, 0);
    hier.accelAccess(0x8000, 64, false, 1, 0);
    EXPECT_DOUBLE_EQ(hier.cacheAccesses(),
                     hier.l1().accesses() + hier.l2().accesses() +
                         hier.l3().totalAccesses() +
                         hier.acp(1).accesses());
}

TEST(LineHelpers, CoverProperties)
{
    EXPECT_EQ(mem::lineAlign(0x1234), 0x1200u);
    EXPECT_EQ(mem::linesCovering(0, 64), 1u);
    EXPECT_EQ(mem::linesCovering(63, 2), 2u);
    EXPECT_EQ(mem::linesCovering(0, 0), 0u);
    EXPECT_EQ(mem::linesCovering(64, 128), 2u);
}
