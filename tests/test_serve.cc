/**
 * @file
 * Offload-service tests: protocol round trips and schema negatives,
 * daemon end-to-end over loopback TCP and Unix sockets (served report
 * equals a direct --stats-json run under the default statsdiff
 * ignores), per-request failure isolation (malformed JSON, unknown
 * workloads, oversized lines, client disconnects — the daemon
 * outlives them all), admission control, drain with idle connections,
 * plan-cache sharing across concurrent clients, the
 * disable-flushes-entries semantics, the capacity/eviction boundary,
 * and a TSan-facing concurrent getOrCompile stress.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/compiler/plan_cache.hh"
#include "src/driver/config.hh"
#include "src/driver/runner.hh"
#include "src/driver/statsdiff.hh"
#include "src/driver/system.hh"
#include "src/serve/client.hh"
#include "src/serve/protocol.hh"
#include "src/serve/server.hh"
#include "src/sim/json.hh"
#include "src/sim/logging.hh"
#include "src/workloads/workload.hh"

using namespace distda;
using compiler::PlanCache;
using serve::ServeClient;
using serve::ServeOptions;
using serve::ServeRequest;
using serve::Server;

namespace
{

/** A small, fast request used throughout. */
ServeRequest
sampleRequest()
{
    ServeRequest req;
    req.id = 7;
    req.workload = "fdt";
    req.config.model = driver::parseArchModel("Dist-DA-IO");
    req.scale = 0.25;
    return req;
}

/** Start a loopback-TCP server on an ephemeral port. */
std::unique_ptr<Server>
startTcpServer(ServeOptions opts = ServeOptions{})
{
    opts.tcpPort = 0;
    auto server = std::make_unique<Server>(opts);
    server->start();
    EXPECT_GT(server->port(), 0);
    return server;
}

/** Connect a client to @p server (fatal test failure if it cannot). */
void
connectTo(const Server &server, ServeClient &client)
{
    std::string err;
    ASSERT_TRUE(client.connectTcp("", server.port(), err)) << err;
}

/** Issue one request line and parse the JSON response. */
sim::JsonValue
roundTrip(ServeClient &client, const std::string &line,
          int timeout_ms = 60'000)
{
    std::string response, err;
    EXPECT_TRUE(client.request(line, response, err, timeout_ms)) << err;
    sim::JsonValue doc;
    EXPECT_TRUE(sim::tryParseJson(response, doc, err)) << err;
    return doc;
}

bool
responseOk(const sim::JsonValue &doc)
{
    const sim::JsonValue *ok = doc.find("ok");
    return ok && ok->kind == sim::JsonValue::Kind::Bool && ok->b;
}

std::string
responseKind(const sim::JsonValue &doc)
{
    const sim::JsonValue *kind = doc.find("kind");
    return kind && kind->isString() ? kind->str : "";
}

/**
 * Compiled kernels to stress the cache with: every kernel of every
 * paper workload (the workloads own the kernels, so they ride along).
 */
struct KernelSet
{
    std::vector<std::unique_ptr<workloads::Workload>> owners;
    std::vector<std::unique_ptr<driver::System>> systems;
    std::vector<const compiler::Kernel *> kernels;
};

KernelSet
allKernels()
{
    KernelSet set;
    for (const std::string &name : workloads::workloadNames()) {
        auto wl = workloads::makeWorkload(name, 0.25);
        driver::SystemParams sp;
        sp.arenaBytes = wl->arenaBytes();
        driver::RunConfig cfg;
        sp.allocAffinity = cfg.allocAffinity();
        auto sys = std::make_unique<driver::System>(sp);
        wl->setup(*sys);
        for (const compiler::Kernel *k : wl->kernels())
            set.kernels.push_back(k);
        set.owners.push_back(std::move(wl));
        set.systems.push_back(std::move(sys));
    }
    return set;
}

} // namespace

// ---------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------

TEST(ServeProtocol, RequestLineRoundTripsExactly)
{
    ServeRequest req = sampleRequest();
    req.config.accelGHz = 2.0;
    req.config.disableCombining = true;
    req.probe = true;

    ServeRequest parsed;
    std::string err;
    ASSERT_TRUE(
        serve::parseServeRequest(serve::buildRequestLine(req), parsed,
                                 err))
        << err;
    EXPECT_EQ(parsed.id, req.id);
    EXPECT_EQ(parsed.workload, req.workload);
    EXPECT_EQ(parsed.config.model, req.config.model);
    EXPECT_EQ(parsed.config.accelGHz, req.config.accelGHz);
    EXPECT_EQ(parsed.config.disableCombining,
              req.config.disableCombining);
    EXPECT_EQ(parsed.scale, req.scale);
    EXPECT_EQ(parsed.probe, req.probe);
}

TEST(ServeProtocol, ConfigModelNameShorthandIsAccepted)
{
    ServeRequest parsed;
    std::string err;
    ASSERT_TRUE(serve::parseServeRequest(
        R"({"workload":"bfs","config":"Dist-DA-F"})", parsed, err))
        << err;
    EXPECT_EQ(parsed.config.model, driver::parseArchModel("Dist-DA-F"));
    EXPECT_EQ(parsed.scale, 1.0); // default
}

TEST(ServeProtocol, MalformedJsonReportsPosition)
{
    ServeRequest parsed;
    std::string err;
    EXPECT_FALSE(serve::parseServeRequest(R"({"workload": )", parsed,
                                          err));
    EXPECT_NE(err.find("offset"), std::string::npos) << err;
}

TEST(ServeProtocol, SchemaViolationsAreNamedErrors)
{
    const struct
    {
        const char *line;
        const char *fragment;
    } cases[] = {
        {R"([1,2,3])", "must be a JSON object"},
        {R"({"config":"Dist-DA-IO"})", "missing required 'workload'"},
        {R"({"workload":"fdt"})", "missing required 'config'"},
        {R"({"workload":"fdt","config":"NoSuchModel"})", "NoSuchModel"},
        {R"({"workload":"fdt","config":{"ghz":1}})",
         "missing required 'model'"},
        {R"({"workload":"fdt","config":"Dist-DA-IO","scale":0})",
         "'scale' must be > 0"},
        {R"({"workload":"fdt","config":"Dist-DA-IO","frobnicate":1})",
         "unknown request member 'frobnicate'"},
        {R"({"workload":"fdt","config":{"model":"Dist-DA-IO","x":1}})",
         "unknown config member 'x'"},
        {R"({"id":-1,"workload":"fdt","config":"Dist-DA-IO"})",
         "non-negative integer"},
    };
    for (const auto &c : cases) {
        ServeRequest parsed;
        std::string err;
        EXPECT_FALSE(serve::parseServeRequest(c.line, parsed, err))
            << c.line;
        EXPECT_NE(err.find(c.fragment), std::string::npos)
            << c.line << " -> " << err;
    }
}

TEST(ServeProtocol, ErrorResponseEchoesIdAndKind)
{
    const std::string line =
        serve::buildErrorResponse(42, "parse", "bad things at offset 3");
    sim::JsonValue doc;
    std::string err;
    ASSERT_TRUE(sim::tryParseJson(line, doc, err)) << err;
    EXPECT_FALSE(responseOk(doc));
    EXPECT_EQ(doc.find("id")->num, 42.0);
    EXPECT_EQ(responseKind(doc), "parse");
}

// ---------------------------------------------------------------------
// Daemon end-to-end
// ---------------------------------------------------------------------

TEST(ServeServer, ServesARequestAndReportMatchesDirectRun)
{
    auto server = startTcpServer();
    ServeClient client;
    connectTo(*server, client);

    ServeRequest req = sampleRequest();
    req.probe = true;
    const sim::JsonValue doc =
        roundTrip(client, serve::buildRequestLine(req));
    ASSERT_TRUE(responseOk(doc));
    EXPECT_EQ(doc.find("id")->num, 7.0);
    const sim::JsonValue *report = doc.find("report");
    ASSERT_NE(report, nullptr);
    ASSERT_TRUE(report->isObject());

    // The same offload run, driven directly through the runner.
    driver::RunOptions ro;
    ro.scale = req.scale;
    ro.obs.forceProbe = true;
    std::string direct_report;
    ro.obs.reportOut = &direct_report;
    driver::runWorkload(req.workload, req.config, ro);

    sim::JsonValue direct;
    std::string err;
    ASSERT_TRUE(sim::tryParseJson(direct_report, direct, err)) << err;

    driver::StatsDiffOptions diff_opts;
    diff_opts.ignoreSubstrings = driver::defaultIgnoreSubstrings();
    const driver::StatsDiff diff =
        driver::diffReports(direct, *report, diff_opts);
    EXPECT_TRUE(diff.pass())
        << driver::renderDiff(diff, diff_opts, "direct", "served");
    EXPECT_GT(diff.compared, 0u);
    EXPECT_EQ(diff.onlyA, 0u);
    EXPECT_EQ(diff.onlyB, 0u);

    server->stop();
    EXPECT_EQ(server->stats().served, 1u);
}

TEST(ServeServer, UnixSocketTransportWorks)
{
    const std::string path =
        "/tmp/distda_serve_test_" + std::to_string(::getpid()) +
        ".sock";
    ServeOptions opts;
    opts.socketPath = path;
    Server server(opts);
    server.start();

    ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connectUnix(path, err)) << err;
    const sim::JsonValue doc =
        roundTrip(client, serve::buildRequestLine(sampleRequest()));
    EXPECT_TRUE(responseOk(doc));

    server.stop();
    // The socket file is unlinked on shutdown.
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(ServeServer, MalformedRequestsGetErrorRepliesAndDaemonSurvives)
{
    auto server = startTcpServer();
    ServeClient client;
    connectTo(*server, client);

    // Broken JSON → parse error with a position, same connection.
    sim::JsonValue doc = roundTrip(client, R"({"workload": })");
    EXPECT_FALSE(responseOk(doc));
    EXPECT_EQ(responseKind(doc), "parse");
    EXPECT_NE(doc.find("error")->str.find("offset"), std::string::npos);

    // Unknown workload → request error.
    doc = roundTrip(client,
                    R"({"workload":"nope","config":"Dist-DA-IO"})");
    EXPECT_FALSE(responseOk(doc));
    EXPECT_EQ(responseKind(doc), "request");
    EXPECT_NE(doc.find("error")->str.find("nope"), std::string::npos);

    // Excessive scale → request error (admission-controlled knob).
    doc = roundTrip(
        client, R"({"workload":"fdt","config":"Dist-DA-IO","scale":99})");
    EXPECT_FALSE(responseOk(doc));
    EXPECT_EQ(responseKind(doc), "request");

    // The daemon still serves real work on the very same connection.
    doc = roundTrip(client, serve::buildRequestLine(sampleRequest()));
    EXPECT_TRUE(responseOk(doc));

    server->stop();
    EXPECT_EQ(server->stats().errors, 3u);
    EXPECT_EQ(server->stats().served, 1u);
}

TEST(ServeServer, OversizedRequestLineIsRejected)
{
    ServeOptions opts;
    opts.maxRequestBytes = 512; // a normal request line still fits
    auto server = startTcpServer(opts);
    ServeClient client;
    connectTo(*server, client);

    const std::string huge(1024, 'x');
    const sim::JsonValue doc = roundTrip(client, huge);
    EXPECT_FALSE(responseOk(doc));
    EXPECT_EQ(responseKind(doc), "oversize");

    // Oversize closes the connection; a fresh one still works.
    ServeClient fresh;
    connectTo(*server, fresh);
    EXPECT_TRUE(responseOk(
        roundTrip(fresh, serve::buildRequestLine(sampleRequest()))));
    server->stop();
}

TEST(ServeServer, ClientDisconnectDoesNotKillTheDaemon)
{
    auto server = startTcpServer();
    {
        // Send a valid request and hang up without reading the reply.
        ServeClient rude;
        connectTo(*server, rude);
        std::string err;
        ASSERT_TRUE(rude.sendLine(
            serve::buildRequestLine(sampleRequest()), err))
            << err;
        ::shutdown(rude.fd(), SHUT_RDWR);
        rude.disconnect();
    }
    // The daemon outlives the rudeness and serves the next client.
    ServeClient polite;
    connectTo(*server, polite);
    EXPECT_TRUE(responseOk(
        roundTrip(polite, serve::buildRequestLine(sampleRequest()))));
    server->stop();
}

TEST(ServeServer, BusyRejectionWhenAdmissionBoundIsReached)
{
    ServeOptions opts;
    opts.maxConnections = 0; // everything is over the bound
    auto server = startTcpServer(opts);

    ServeClient client;
    connectTo(*server, client);
    std::string response, err;
    ASSERT_TRUE(client.recvLine(response, err, 10'000)) << err;
    sim::JsonValue doc;
    ASSERT_TRUE(sim::tryParseJson(response, doc, err)) << err;
    EXPECT_FALSE(responseOk(doc));
    EXPECT_EQ(responseKind(doc), "busy");

    server->stop();
    EXPECT_GE(server->stats().busyRejected, 1u);
}

TEST(ServeServer, DrainReturnsWithAnIdleConnectionOpen)
{
    auto server = startTcpServer();
    ServeClient idle;
    connectTo(*server, idle);
    // Give the accept thread a moment to hand the connection off.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server->stop(); // must not hang on the idle reader
    std::string response, err;
    EXPECT_FALSE(idle.recvLine(response, err, 5'000));
}

TEST(ServeServer, ConcurrentClientsShareTheCachedPlan)
{
    PlanCache &cache = PlanCache::process();
    cache.clear();

    ServeOptions opts;
    opts.jobs = 4;
    auto server = startTcpServer(opts);

    constexpr int kClients = 4;
    constexpr int kRequestsEach = 2;
    std::atomic<int> ok_count{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&server, &ok_count] {
            ServeClient client;
            std::string err;
            if (!client.connectTcp("", server->port(), err))
                return;
            for (int r = 0; r < kRequestsEach; ++r) {
                std::string response;
                if (!client.request(
                        serve::buildRequestLine(sampleRequest()),
                        response, err, 60'000))
                    return;
                sim::JsonValue doc;
                if (sim::tryParseJson(response, doc, err) &&
                    responseOk(doc))
                    ok_count.fetch_add(1);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    server->stop();

    EXPECT_EQ(ok_count.load(), kClients * kRequestsEach);

    // All requests ran the same (workload, config): one cache entry
    // per kernel, compiled once, hit by everyone else.
    const auto wl = workloads::makeWorkload("fdt", 0.25);
    const PlanCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, wl->kernels().size());
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GE(stats.hits + stats.misses,
              static_cast<std::uint64_t>(kClients * kRequestsEach));
}

// ---------------------------------------------------------------------
// PlanCache semantics the service depends on
// ---------------------------------------------------------------------

TEST(ServePlanCache, DisableFlushesEntriesAndReenableRecompiles)
{
    KernelSet set = allKernels();
    ASSERT_FALSE(set.kernels.empty());
    const compiler::Kernel &k = *set.kernels.front();
    const compiler::CompileOptions opts;

    PlanCache cache;
    EXPECT_FALSE(cache.getOrCompile(k, opts).hit);
    EXPECT_TRUE(cache.getOrCompile(k, opts).hit);
    EXPECT_EQ(cache.stats().entries, 1u);

    // Disabling a long-lived service's cache must release plan memory
    // immediately, not strand it until re-enable.
    cache.setEnabled(false);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_FALSE(cache.getOrCompile(k, opts).hit);
    EXPECT_EQ(cache.stats().entries, 0u); // disabled: no inserts

    // Counters survive the flush; only clear() resets them.
    EXPECT_GE(cache.stats().misses, 2u);
    EXPECT_GE(cache.stats().hits, 1u);

    // Re-enable starts cold: first lookup recompiles, second hits.
    cache.setEnabled(true);
    EXPECT_FALSE(cache.getOrCompile(k, opts).hit);
    EXPECT_TRUE(cache.getOrCompile(k, opts).hit);
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ServePlanCache, CapacityBoundEvictsOldestAndCountsEvictions)
{
    KernelSet set = allKernels();
    ASSERT_GE(set.kernels.size(), 3u);
    const compiler::CompileOptions opts;

    PlanCache cache;
    cache.setCapacity(2);
    EXPECT_EQ(cache.stats().capacity, 2u);

    // Fill to capacity, then one more: the oldest entry must go.
    EXPECT_FALSE(cache.getOrCompile(*set.kernels[0], opts).hit);
    EXPECT_FALSE(cache.getOrCompile(*set.kernels[1], opts).hit);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_FALSE(cache.getOrCompile(*set.kernels[2], opts).hit);
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);

    // FIFO: kernel 0 was evicted, kernels 1 and 2 still hit.
    EXPECT_TRUE(cache.getOrCompile(*set.kernels[1], opts).hit);
    EXPECT_TRUE(cache.getOrCompile(*set.kernels[2], opts).hit);
    EXPECT_FALSE(cache.getOrCompile(*set.kernels[0], opts).hit);

    // Shrinking below the live count evicts immediately.
    cache.setCapacity(1);
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_GE(cache.stats().evictions, 3u);

    // Capacity clamps at one entry minimum.
    cache.setCapacity(0);
    EXPECT_EQ(cache.stats().capacity, 1u);
}

TEST(ServePlanCache, ConcurrentGetOrCompileIsRaceFree)
{
    KernelSet set = allKernels();
    ASSERT_GE(set.kernels.size(), 3u);
    const compiler::CompileOptions opts;

    PlanCache cache;
    cache.setCapacity(std::max<std::size_t>(
        2, set.kernels.size() / 2)); // force eviction churn

    constexpr int kThreads = 8;
    constexpr int kIters = 24;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                const compiler::Kernel &k =
                    *set.kernels[(t + i) % set.kernels.size()];
                const PlanCache::Lookup lookup =
                    cache.getOrCompile(k, opts);
                if (!lookup.plan || lookup.plan->kernel.name != k.name)
                    failures.fetch_add(1);
                if (i % 8 == 0)
                    (void)cache.stats();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(cache.stats().hits + cache.stats().misses,
              static_cast<std::uint64_t>(kThreads) * kIters);
}
