/**
 * @file
 * Report-comparison tool: diff two stats-JSON run reports (from
 * `distda_run --stats-json=`) or two BENCH_*.json perf-baseline
 * files, leaf by leaf.
 *
 * Usage:
 *   distda_stats diff <a.json> <b.json>
 *       [--threshold=<pct>] [--format=text|markdown|csv]
 *       [--ignore=<substr>] [--all] [--changed-only]
 *   distda_stats show <a.json>
 *
 * diff flattens every numeric leaf of both documents into dotted
 * paths, joins them, and prints a delta table (absolute and percent).
 * Exit status is 0 iff no leaf changed beyond --threshold (default 0:
 * two identical runs must diff clean), 1 when the gate fails, and 2
 * on usage or I/O errors (via fatal). Machine-dependent leaves
 * (wall_ms, compile_ms, saved, sim_rate, hardware_threads) are
 * ignored unless --all is given; each --ignore=<substr> adds another
 * skipped fragment.
 *
 * show prints one document's numeric leaves as "path value" lines —
 * useful for grepping a single report.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/driver/config.hh"
#include "src/driver/statsdiff.hh"
#include "src/sim/json.hh"
#include "src/sim/logging.hh"

using namespace distda;

namespace
{

sim::JsonValue
loadReport(const std::string &path)
{
    std::string text;
    if (!sim::readTextFile(path, text))
        fatal("cannot read report '%s'", path.c_str());
    return sim::parseJson(text, path.c_str());
}

driver::DiffFormat
parseFormat(const std::string &name)
{
    if (name == "text")
        return driver::DiffFormat::Text;
    if (name == "markdown")
        return driver::DiffFormat::Markdown;
    if (name == "csv")
        return driver::DiffFormat::Csv;
    fatal("--format: '%s' is not a format (text|markdown|csv)",
          name.c_str());
    return driver::DiffFormat::Text; // unreachable
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: distda_stats diff <a.json> <b.json>\n"
        "           [--threshold=<pct>] [--format=text|markdown|csv]\n"
        "           [--ignore=<substr>] [--all] [--changed-only]\n"
        "       distda_stats show <a.json>\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string command = argv[1];

    driver::StatsDiffOptions opts;
    opts.ignoreSubstrings = driver::defaultIgnoreSubstrings();
    std::vector<std::string> files;
    std::vector<std::string> extra_ignores;
    bool all = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--threshold=", 0) == 0) {
            opts.thresholdPct = driver::parseDouble(
                arg.substr(12), "--threshold");
            if (opts.thresholdPct < 0.0)
                fatal("--threshold: %.6g is negative",
                      opts.thresholdPct);
        } else if (arg.rfind("--format=", 0) == 0) {
            opts.format = parseFormat(arg.substr(9));
        } else if (arg.rfind("--ignore=", 0) == 0) {
            const std::string frag = arg.substr(9);
            if (frag.empty())
                fatal("--ignore: empty substring");
            extra_ignores.push_back(frag);
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--changed-only") {
            opts.changedOnly = true;
        } else if (arg.rfind("--", 0) == 0) {
            fatal("unknown flag '%s'", arg.c_str());
        } else {
            files.push_back(arg);
        }
    }
    if (all)
        opts.ignoreSubstrings.clear();
    opts.ignoreSubstrings.insert(opts.ignoreSubstrings.end(),
                                 extra_ignores.begin(),
                                 extra_ignores.end());

    if (command == "show") {
        if (files.size() != 1) {
            usage();
            return 2;
        }
        const sim::JsonValue doc = loadReport(files[0]);
        for (const auto &[path, value] :
             driver::flattenNumericLeaves(doc))
            std::printf("%s %.17g\n", path.c_str(), value);
        return 0;
    }

    if (command != "diff" || files.size() != 2) {
        usage();
        return 2;
    }

    const sim::JsonValue a = loadReport(files[0]);
    const sim::JsonValue b = loadReport(files[1]);
    const driver::StatsDiff d = driver::diffReports(a, b, opts);
    std::fputs(
        renderDiff(d, opts, files[0], files[1]).c_str(), stdout);
    return d.pass() ? 0 : 1;
}
