/**
 * @file
 * Plan-artifact utility: inspect, check and compare the serialized
 * OffloadPlan artifacts that `distda_run --plan-dir=` produces and
 * consumes.
 *
 * Usage:
 *   distda_plan dump --workload=<name> [--config=<model>]
 *                    [--scale=<f>] [--out=<dir>]
 *   distda_plan validate <file.plan>...
 *   distda_plan diff <a.plan> <b.plan>
 *   distda_plan fingerprint --workload=<name> [--config=<model>]
 *                           [--scale=<f>]
 *   distda_plan fingerprint <file.plan>...
 *
 * dump compiles every kernel of the workload under the chosen
 * configuration and prints each plan artifact to stdout, or writes
 * one "<kernel>-<fingerprint>.plan" file per kernel into --out=<dir>
 * (creating the directory), exactly as the runner's --plan-dir does.
 *
 * validate parses each artifact, runs the structural validator (cross
 * references, characteristics consistency, fingerprint match) and
 * checks the serialize→parse→serialize round trip is byte-identical.
 * Exit status is nonzero iff any file fails.
 *
 * diff compares two artifacts line by line and prints the first
 * divergence plus a summary; exit status 1 when they differ.
 *
 * fingerprint prints "<kernel> <fingerprint>" per kernel — from a
 * fresh compile of a workload, or as recorded in artifact files (with
 * a recomputation check). Fingerprints are stable across processes,
 * so they can be compared between machines and runs.
 */

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/compiler/plan_io.hh"
#include "src/driver/config.hh"
#include "src/driver/system.hh"
#include "src/sim/logging.hh"
#include "src/workloads/workload.hh"

using namespace distda;

namespace
{

struct Args
{
    std::string command;
    std::string workload;
    std::string config = "Dist-DA-F";
    std::string outDir;
    double scale = 1.0;
    std::vector<std::string> files;
};

driver::ArchModel
parseModel(const std::string &name)
{
    const driver::ArchModel all[] = {
        driver::ArchModel::OoO,          driver::ArchModel::MonoCA,
        driver::ArchModel::MonoDA_IO,    driver::ArchModel::MonoDA_F,
        driver::ArchModel::DistDA_IO,    driver::ArchModel::DistDA_F,
        driver::ArchModel::DistDA_IO_SW, driver::ArchModel::DistDA_F_A,
    };
    for (driver::ArchModel m : all) {
        if (name == driver::archModelName(m))
            return m;
    }
    fatal("unknown config '%s'", name.c_str());
}

/** Compile every kernel of the selected workload. */
std::vector<compiler::OffloadPlan>
compileWorkload(const Args &args)
{
    auto wl = workloads::makeWorkload(args.workload, args.scale);
    driver::SystemParams sp;
    sp.arenaBytes = wl->arenaBytes();
    driver::RunConfig cfg;
    cfg.model = parseModel(args.config);
    sp.allocAffinity = cfg.allocAffinity();
    driver::System sys(sp);
    wl->setup(sys);

    std::vector<compiler::OffloadPlan> plans;
    for (const compiler::Kernel *kernel : wl->kernels())
        plans.push_back(
            compiler::compileKernel(*kernel, cfg.compileOptions()));
    return plans;
}

int
cmdDump(const Args &args)
{
    if (args.workload.empty())
        fatal("dump needs --workload=<name>");
    const std::vector<compiler::OffloadPlan> plans =
        compileWorkload(args);
    if (args.outDir.empty()) {
        for (const compiler::OffloadPlan &plan : plans)
            std::fputs(compiler::serializePlan(plan).c_str(), stdout);
        return 0;
    }
    if (::mkdir(args.outDir.c_str(), 0755) != 0 && errno != EEXIST)
        fatal("cannot create plan dir '%s'", args.outDir.c_str());
    for (const compiler::OffloadPlan &plan : plans) {
        const std::string path =
            args.outDir + "/" +
            compiler::planArtifactFile(plan.kernel.name,
                                       plan.fingerprint);
        compiler::savePlan(plan, path);
        std::printf("%s\n", path.c_str());
    }
    return 0;
}

int
cmdValidate(const Args &args)
{
    if (args.files.empty())
        fatal("validate needs at least one <file.plan>");
    int failures = 0;
    for (const std::string &path : args.files) {
        std::string defect;
        try {
            ScopedFailureCapture capture;
            const compiler::OffloadPlan plan =
                compiler::loadPlan(path);
            defect = compiler::validatePlanArtifact(plan);
            if (defect.empty()) {
                const std::string text =
                    compiler::serializePlan(plan);
                const compiler::OffloadPlan reparsed =
                    compiler::parsePlan(text);
                if (compiler::serializePlan(reparsed) != text)
                    defect = "round trip is not byte-identical";
            }
        } catch (const SimFailure &e) {
            defect = e.what();
        }
        if (defect.empty()) {
            std::printf("%s: ok\n", path.c_str());
        } else {
            std::printf("%s: FAIL: %s\n", path.c_str(),
                        defect.c_str());
            ++failures;
        }
    }
    return failures ? 1 : 0;
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read '%s'", path.c_str());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

int
cmdDiff(const Args &args)
{
    if (args.files.size() != 2)
        fatal("diff needs exactly two <file.plan> arguments");
    const std::vector<std::string> a = readLines(args.files[0]);
    const std::vector<std::string> b = readLines(args.files[1]);
    const std::size_t n = std::max(a.size(), b.size());
    std::size_t differing = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::string *la = i < a.size() ? &a[i] : nullptr;
        const std::string *lb = i < b.size() ? &b[i] : nullptr;
        if (la && lb && *la == *lb)
            continue;
        if (differing == 0) {
            std::printf("first divergence at line %zu:\n", i + 1);
            std::printf("  -%s\n", la ? la->c_str() : "<eof>");
            std::printf("  +%s\n", lb ? lb->c_str() : "<eof>");
        }
        ++differing;
    }
    if (differing == 0) {
        std::printf("identical (%zu lines)\n", a.size());
        return 0;
    }
    std::printf("%zu differing line(s) of %zu\n", differing, n);
    return 1;
}

int
cmdFingerprint(const Args &args)
{
    if (!args.workload.empty()) {
        for (const compiler::OffloadPlan &plan :
             compileWorkload(args)) {
            std::printf("%s %s\n", plan.kernel.name.c_str(),
                        plan.fingerprint.c_str());
        }
        return 0;
    }
    if (args.files.empty())
        fatal("fingerprint needs --workload=<name> or <file.plan>...");
    int failures = 0;
    for (const std::string &path : args.files) {
        try {
            ScopedFailureCapture capture;
            const compiler::OffloadPlan plan =
                compiler::loadPlan(path);
            const std::string recomputed = compiler::planFingerprint(
                plan.kernel, plan.options);
            if (recomputed == plan.fingerprint) {
                std::printf("%s %s\n", plan.kernel.name.c_str(),
                            plan.fingerprint.c_str());
            } else {
                std::printf("%s: recorded %s but recomputed %s\n",
                            path.c_str(), plan.fingerprint.c_str(),
                            recomputed.c_str());
                ++failures;
            }
        } catch (const SimFailure &e) {
            std::printf("%s: FAIL: %s\n", path.c_str(), e.what());
            ++failures;
        }
    }
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (args.command.empty() && arg[0] != '-') {
            args.command = arg;
        } else if (arg.rfind("--workload=", 0) == 0) {
            args.workload = arg.substr(11);
        } else if (arg.rfind("--config=", 0) == 0) {
            args.config = arg.substr(9);
        } else if (arg.rfind("--scale=", 0) == 0) {
            args.scale = driver::parseDouble(arg.substr(8), "--scale");
        } else if (arg.rfind("--out=", 0) == 0) {
            args.outDir = arg.substr(6);
        } else if (arg[0] != '-') {
            args.files.push_back(arg);
        } else {
            fatal("unknown flag '%s'", arg.c_str());
        }
    }

    setInformEnabled(false);
    if (args.command == "dump")
        return cmdDump(args);
    if (args.command == "validate")
        return cmdValidate(args);
    if (args.command == "diff")
        return cmdDiff(args);
    if (args.command == "fingerprint")
        return cmdFingerprint(args);
    fatal("usage: distda_plan dump|validate|diff|fingerprint ... "
          "(see file header)");
}
