/**
 * @file
 * Offload-as-a-service daemon: a long-lived front end over
 * serve::Server. Clients submit offload requests (workload +
 * RunConfig as JSON, one per line) over a Unix or loopback-TCP
 * socket; plans compile once per (kernel, config) fingerprint via the
 * process-wide PlanCache and every later request reuses them; each
 * response streams back the full --stats-json run report.
 *
 * Usage:
 *   distda_serve --socket=<path> | --port=<n>
 *                [--jobs=<n>] [--backlog=<n>] [--max-connections=<n>]
 *                [--max-request-bytes=<n>] [--timeout-ms=<n>]
 *                [--max-scale=<f>] [--plan-cache-capacity=<n>]
 *                [--verbose]
 *
 * --port=0 binds an ephemeral loopback port and prints it. SIGINT or
 * SIGTERM drains: accepting stops, in-flight requests finish and
 * flush their responses, the daemon prints its service summary and
 * exits 0. SIGPIPE is ignored process-wide — a client disconnecting
 * mid-response costs that client its response, never the daemon its
 * life. See DESIGN.md §12 for the protocol schema.
 *
 * Examples:
 *   distda_serve --socket=/tmp/distda.sock --jobs=8
 *   distda_serve --port=9177 --plan-cache-capacity=1024
 */

#include <cstdio>
#include <string>

#include "src/compiler/plan_cache.hh"
#include "src/driver/config.hh"
#include "src/serve/server.hh"
#include "src/sim/logging.hh"

using namespace distda;

int
main(int argc, char **argv)
{
    serve::ServeOptions opts;
    std::size_t cache_capacity = 0;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--socket=", 0) == 0) {
            opts.socketPath = arg.substr(9);
        } else if (arg.rfind("--port=", 0) == 0) {
            opts.tcpPort = static_cast<int>(
                driver::parseInt(arg.substr(7), "--port"));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = static_cast<int>(
                driver::parseInt(arg.substr(7), "--jobs"));
        } else if (arg.rfind("--backlog=", 0) == 0) {
            opts.backlog = static_cast<int>(
                driver::parseInt(arg.substr(10), "--backlog"));
        } else if (arg.rfind("--max-connections=", 0) == 0) {
            opts.maxConnections = static_cast<int>(driver::parseInt(
                arg.substr(18), "--max-connections"));
        } else if (arg.rfind("--max-request-bytes=", 0) == 0) {
            opts.maxRequestBytes =
                static_cast<std::size_t>(driver::parseInt(
                    arg.substr(20), "--max-request-bytes"));
        } else if (arg.rfind("--timeout-ms=", 0) == 0) {
            opts.requestTimeoutMs = static_cast<int>(
                driver::parseInt(arg.substr(13), "--timeout-ms"));
        } else if (arg.rfind("--max-scale=", 0) == 0) {
            opts.maxScale =
                driver::parseDouble(arg.substr(12), "--max-scale");
        } else if (arg.rfind("--plan-cache-capacity=", 0) == 0) {
            cache_capacity = static_cast<std::size_t>(driver::parseInt(
                arg.substr(22), "--plan-cache-capacity"));
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--quiet") {
            verbose = false; // default; accepted for script symmetry
        } else {
            fatal("unknown flag '%s'", arg.c_str());
        }
    }
    if (opts.socketPath.empty() && opts.tcpPort < 0)
        fatal("need a listen address: --socket=<path> or --port=<n>");

    // Per-run inform() chatter would interleave across worker
    // threads; the daemon's own lifecycle messages go to stderr.
    if (!verbose)
        setInformEnabled(false);
    if (cache_capacity > 0)
        compiler::PlanCache::process().setCapacity(cache_capacity);

    serve::Server server(opts);
    server.start();
    serve::Server::installSignalHandlers(server);

    if (!opts.socketPath.empty()) {
        std::fprintf(stderr, "distda_serve: listening on %s\n",
                     opts.socketPath.c_str());
    } else {
        std::fprintf(stderr,
                     "distda_serve: listening on 127.0.0.1:%d\n",
                     server.port());
    }

    server.waitUntilStopRequested();
    std::fprintf(stderr, "distda_serve: draining...\n");
    server.stop();

    const serve::Server::Stats s = server.stats();
    const compiler::PlanCache::Stats cache =
        compiler::PlanCache::process().stats();
    std::fprintf(stderr,
                 "distda_serve: served=%llu errors=%llu "
                 "disconnects=%llu busy_rejected=%llu "
                 "connections=%llu\n",
                 static_cast<unsigned long long>(s.served),
                 static_cast<unsigned long long>(s.errors),
                 static_cast<unsigned long long>(s.disconnects),
                 static_cast<unsigned long long>(s.busyRejected),
                 static_cast<unsigned long long>(s.accepted));
    std::fprintf(stderr,
                 "distda_serve: plan cache hits=%llu misses=%llu "
                 "hit_rate=%.3f entries=%zu evictions=%llu "
                 "compile_ms=%.1f saved_ms=%.1f\n",
                 static_cast<unsigned long long>(cache.hits),
                 static_cast<unsigned long long>(cache.misses),
                 cache.hitRate(), cache.entries,
                 static_cast<unsigned long long>(cache.evictions),
                 cache.compileMs, cache.savedMs);
    return 0;
}
