/**
 * @file
 * Command-line runner: execute any Table IV workload under any tested
 * configuration and print the full metrics record.
 *
 * Usage:
 *   distda_run [--list] [--workload=<name>] [--config=<model>]
 *              [--scale=<f>] [--ghz=<f>] [--csv]
 *              [--no-combining] [--no-retention]
 *              [--buffer=<bytes>] [--channel=<elems>]
 *              [--verify[=warn|error|off]] [--verify-only]
 *
 * --verify sets how statically-detected plan bugs are treated during
 * compilation (default: error). --verify-only compiles every kernel,
 * prints all verifier diagnostics and exits without simulating;
 * the exit status is nonzero iff any error-severity finding exists.
 *
 * Examples:
 *   distda_run --workload=fdt --config=Dist-DA-F
 *   distda_run --workload=bfs --config=all --csv
 *   distda_run --workload=cho --config=Dist-DA-F --verify-only
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/driver/runner.hh"
#include "src/workloads/workload.hh"

using namespace distda;

namespace
{

driver::ArchModel
parseModel(const std::string &name)
{
    const driver::ArchModel all[] = {
        driver::ArchModel::OoO,          driver::ArchModel::MonoCA,
        driver::ArchModel::MonoDA_IO,    driver::ArchModel::MonoDA_F,
        driver::ArchModel::DistDA_IO,    driver::ArchModel::DistDA_F,
        driver::ArchModel::DistDA_IO_SW, driver::ArchModel::DistDA_F_A,
    };
    for (driver::ArchModel m : all) {
        if (name == driver::archModelName(m))
            return m;
    }
    fatal("unknown config '%s' (try --list)", name.c_str());
}

compiler::VerifyMode
parseVerifyMode(const std::string &name)
{
    const compiler::VerifyMode all[] = {
        compiler::VerifyMode::Off,
        compiler::VerifyMode::Warn,
        compiler::VerifyMode::Error,
    };
    for (compiler::VerifyMode m : all) {
        if (name == compiler::verifyModeName(m))
            return m;
    }
    fatal("unknown verify mode '%s' (off|warn|error)", name.c_str());
}

void
printHuman(const driver::Metrics &m)
{
    std::printf("== %s under %s ==\n", m.workload.c_str(),
                m.config.c_str());
    std::printf("  validated:        %s\n",
                m.validated ? "yes" : "NO");
    std::printf("  time:             %.3f us\n", m.timeNs / 1000.0);
    std::printf("  energy:           %.3f uJ\n",
                m.totalEnergyPj / 1e6);
    std::printf("  instructions:     host %.0f, accel %.0f "
                "(%.1f%% coverage)\n",
                m.hostInsts, m.accelInsts, m.codeCoverage());
    std::printf("  memory ops:       %.0f offloaded (%.2f%% dc), "
                "%.0f host\n",
                m.kernelMemOps, m.dataCoverage(), m.hostMemOps);
    std::printf("  cache accesses:   %.0f\n", m.cacheAccesses);
    std::printf("  data movement:    %.3f MB\n",
                m.dataMovementBytes / 1e6);
    std::printf("  NoC bytes:        ctrl %.0f, data %.0f, acc_ctrl "
                "%.0f, acc_data %.0f\n",
                m.nocCtrlBytes, m.nocDataBytes, m.nocAccCtrlBytes,
                m.nocAccDataBytes);
    std::printf("  accel traffic:    intra %.0f, D-A %.0f, A-A %.0f "
                "bytes\n",
                m.intraBytes, m.daBytes, m.aaBytes);
    std::printf("  MMIO intrinsics:  %.0f (%.3f%% init overhead)\n",
                m.mmioOps, m.initOverhead());
    std::printf("  energy breakdown:");
    for (const auto &[name, pj] : m.energyByComponent) {
        if (pj > 0.0)
            std::printf(" %s=%.1fuJ", name.c_str(), pj / 1e6);
    }
    std::printf("\n");
}

void
printCsvHeader()
{
    std::printf("workload,config,validated,time_ns,energy_pj,"
                "host_insts,accel_insts,mem_ops,cache_accesses,"
                "data_movement_bytes,noc_ctrl,noc_data,noc_acc_ctrl,"
                "noc_acc_data,intra,da,aa,mmio\n");
}

void
printCsv(const driver::Metrics &m)
{
    std::printf("%s,%s,%d,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,"
                "%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f\n",
                m.workload.c_str(), m.config.c_str(), m.validated,
                m.timeNs, m.totalEnergyPj, m.hostInsts, m.accelInsts,
                m.kernelMemOps, m.cacheAccesses, m.dataMovementBytes,
                m.nocCtrlBytes, m.nocDataBytes, m.nocAccCtrlBytes,
                m.nocAccDataBytes, m.intraBytes, m.daBytes, m.aaBytes,
                m.mmioOps);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "fdt";
    std::string config = "Dist-DA-F";
    driver::RunConfig cfg;
    driver::RunOptions opts;
    bool csv = false;
    bool verify_only = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            std::printf("workloads:");
            for (const auto &w : workloads::workloadNames())
                std::printf(" %s", w.c_str());
            std::printf(" spmv\nconfigs: OoO Mono-CA Mono-DA-IO "
                        "Mono-DA-F Dist-DA-IO Dist-DA-F Dist-DA-IO+SW "
                        "Dist-DA-F+A all\n");
            return 0;
        } else if (arg.rfind("--workload=", 0) == 0) {
            workload = arg.substr(11);
        } else if (arg.rfind("--config=", 0) == 0) {
            config = arg.substr(9);
        } else if (arg.rfind("--scale=", 0) == 0) {
            opts.scale = std::atof(arg.c_str() + 8);
        } else if (arg.rfind("--ghz=", 0) == 0) {
            cfg.accelGHz = std::atof(arg.c_str() + 6);
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--no-combining") {
            cfg.disableCombining = true;
        } else if (arg == "--no-retention") {
            cfg.disableRetention = true;
        } else if (arg.rfind("--buffer=", 0) == 0) {
            cfg.bufferBytesOverride = static_cast<std::uint32_t>(
                std::atoi(arg.c_str() + 9));
        } else if (arg.rfind("--channel=", 0) == 0) {
            cfg.channelCapacityOverride = std::atoi(arg.c_str() + 10);
        } else if (arg == "--verify") {
            cfg.verifyPlans = compiler::VerifyMode::Error;
        } else if (arg.rfind("--verify=", 0) == 0) {
            cfg.verifyPlans = parseVerifyMode(arg.substr(9));
        } else if (arg == "--verify-only") {
            verify_only = true;
        } else {
            fatal("unknown flag '%s'", arg.c_str());
        }
    }

    setInformEnabled(false);
    std::vector<driver::ArchModel> models;
    if (config == "all")
        models = driver::headlineModels();
    else
        models.push_back(parseModel(config));

    if (verify_only) {
        int errors = 0;
        for (driver::ArchModel m : models) {
            cfg.model = m;
            errors += driver::verifyWorkload(workload, cfg, opts);
        }
        return errors ? 1 : 0;
    }

    if (csv)
        printCsvHeader();
    for (driver::ArchModel m : models) {
        cfg.model = m;
        const auto metrics = driver::runWorkload(workload, cfg, opts);
        if (csv)
            printCsv(metrics);
        else
            printHuman(metrics);
    }
    return 0;
}
