/**
 * @file
 * Command-line runner: execute any Table IV workload under any tested
 * configuration — or sweep `--workload=all --config=all` through the
 * driver's parallel sweep engine — and print the full metrics records.
 *
 * Usage:
 *   distda_run [--list] [--workload=<name>|all] [--config=<model>|all]
 *              [--scale=<f>] [--ghz=<f>] [--csv] [--jobs=<n>]
 *              [--quick] [--paper]
 *              [--no-combining] [--no-retention]
 *              [--buffer=<bytes>] [--channel=<elems>]
 *              [--verify[=warn|error|off]] [--verify-only]
 *              [--verify-json=<file>] [--analyze[=json]]
 *              [--breakdown[=text|json|off]]
 *              [--timeline=<file>] [--stats-json=<file>]
 *              [--stats-interval=<ticks>] [--report-dir=<dir>]
 *              [--plan-dir=<dir>] [--plan-cache[=on|off]]
 *
 * --jobs=<n> runs the sweep's independent simulations on n worker
 * threads (default: DISTDA_JOBS, else hardware_concurrency). Results
 * are reported in deterministic job order and each simulation is
 * deterministic, so output is byte-identical at every --jobs level.
 *
 * --verify sets how statically-detected plan bugs are treated during
 * compilation (default: error). --verify-only compiles every kernel,
 * prints all verifier diagnostics and exits without simulating;
 * the exit status is nonzero iff any error-severity finding exists.
 * --verify-json=<file> implies --verify-only and additionally writes
 * every diagnostic as structured JSON to the file.
 *
 * --analyze runs each selected (workload, config) pair once with
 * invocation profiling on and prints the plan-analysis facts (bounds,
 * channel liveness, purity, interference; see DESIGN.md §6) per
 * kernel; --analyze=json emits one JSON document instead. The exit
 * status is nonzero iff any fact is Violated.
 *
 * --breakdown prints a Table-VI-style per-kernel offload-lifecycle
 * phase table after every run: per-phase latency share (enqueue,
 * decode, buffer-alloc, dispatch, execute, writeback, complete — the
 * shares always sum to 100% by the conservation invariant) plus
 * end-to-end mean/p50/p95/p99 per invocation. Under --csv the text
 * table goes to stderr so CSV output stays byte-identical;
 * --breakdown=json owns stdout — exactly one JSON document, pipeable
 * to json.tool, with the human records on stderr — and refuses to
 * combine with --csv.
 *
 * Observability (all off by default, zero overhead when off):
 * --timeline= writes a Chrome trace-event JSON timeline (open in
 * Perfetto / chrome://tracing) and --stats-json= a machine-readable
 * run report; both are single-run flags — a multi-job sweep must use
 * --report-dir=<dir>, which writes one pair of files per job into the
 * directory instead. --stats-interval= sets the counter-sampling
 * coalescing interval in simulated ticks (picoseconds; default 1e6).
 * Reports go to files only: stdout (CSV or human records) is
 * byte-identical with or without these flags.
 *
 * Plan artifacts (the compile→execute split): --plan-dir=<dir> loads
 * each kernel's serialized plan artifact from the directory when a
 * matching one exists (same kernel and compile options, checked by
 * fingerprint) and dumps freshly compiled plans into it otherwise, so
 * a second run skips compilation entirely. --plan-cache=off disables
 * the in-process plan cache (every context compiles fresh); it is on
 * by default. Use tools/distda_plan to inspect artifacts.
 *
 * Examples:
 *   distda_run --workload=fdt --config=Dist-DA-F
 *   distda_run --workload=bfs --config=all --csv
 *   distda_run --workload=all --config=all --csv --jobs=8
 *   distda_run --workload=cho --config=Dist-DA-F --verify-only
 *   distda_run --workload=pr --config=Dist-DA-F --quick \
 *       --timeline=pr.timeline.json --stats-json=pr.stats.json
 *   distda_run --workload=all --config=all --quick --csv \
 *       --report-dir=reports
 */

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/driver/config.hh"
#include "src/driver/sweep.hh"
#include "src/offload/lifecycle.hh"
#include "src/sim/json.hh"
#include "src/workloads/workload.hh"

using namespace distda;

namespace
{

compiler::VerifyMode
parseVerifyMode(const std::string &name)
{
    const compiler::VerifyMode all[] = {
        compiler::VerifyMode::Off,
        compiler::VerifyMode::Warn,
        compiler::VerifyMode::Error,
    };
    for (compiler::VerifyMode m : all) {
        if (name == compiler::verifyModeName(m))
            return m;
    }
    fatal("unknown verify mode '%s' (off|warn|error)", name.c_str());
}

void
printList()
{
    std::printf("workloads (--workload=; 'all' sweeps the core 12):\n");
    for (const auto &w : workloads::workloadNames())
        std::printf("  %s\n", w.c_str());
    std::printf("  spmv (case study; not part of 'all')\n");
    std::printf("configs (--config=; 'all' sweeps the headline 6):\n");
    for (driver::ArchModel m : driver::allArchModels())
        std::printf("  %s\n", driver::archModelName(m));
    std::printf("  all\n");
}

void
printHuman(std::FILE *out, const driver::Metrics &m)
{
    std::fprintf(out, "== %s under %s ==\n", m.workload.c_str(),
                 m.config.c_str());
    std::fprintf(out, "  validated:        %s\n",
                 m.validated ? "yes" : "NO");
    std::fprintf(out, "  time:             %.3f us\n", m.timeNs / 1000.0);
    std::fprintf(out, "  energy:           %.3f uJ\n",
                 m.totalEnergyPj / 1e6);
    std::fprintf(out, "  instructions:     host %.0f, accel %.0f "
                 "(%.1f%% coverage)\n",
                 m.hostInsts, m.accelInsts, m.codeCoverage());
    std::fprintf(out, "  memory ops:       %.0f offloaded (%.2f%% dc), "
                 "%.0f host\n",
                 m.kernelMemOps, m.dataCoverage(), m.hostMemOps);
    std::fprintf(out, "  cache accesses:   %.0f\n", m.cacheAccesses);
    std::fprintf(out, "  data movement:    %.3f MB\n",
                 m.dataMovementBytes / 1e6);
    std::fprintf(out, "  NoC bytes:        ctrl %.0f, data %.0f, acc_ctrl "
                 "%.0f, acc_data %.0f\n",
                 m.nocCtrlBytes, m.nocDataBytes, m.nocAccCtrlBytes,
                 m.nocAccDataBytes);
    std::fprintf(out, "  accel traffic:    intra %.0f, D-A %.0f, A-A %.0f "
                 "bytes\n",
                 m.intraBytes, m.daBytes, m.aaBytes);
    std::fprintf(out, "  MMIO intrinsics:  %.0f (%.3f%% init overhead)\n",
                 m.mmioOps, m.initOverhead());
    std::fprintf(out, "  energy breakdown:");
    for (const auto &[name, pj] : m.energyByComponent) {
        if (pj > 0.0)
            std::fprintf(out, " %s=%.1fuJ", name.c_str(), pj / 1e6);
    }
    std::fprintf(out, "\n");
}

void
printBreakdownText(std::FILE *out, const driver::Metrics &m)
{
    std::fprintf(out, "== offload breakdown: %s under %s ==\n",
                 m.workload.c_str(), m.config.c_str());
    if (m.offloadBreakdown.empty()) {
        std::fprintf(out, "  (no offload invocations recorded)\n");
        return;
    }
    std::fprintf(out, "  %-18s %8s", "kernel", "invokes");
    for (std::size_t p = 0; p < offload::kNumPhases; ++p) {
        std::fprintf(out, " %11s%%",
                     offload::phaseName(
                         static_cast<offload::Phase>(p)));
    }
    std::fprintf(out, " %12s %10s %10s %10s\n", "e2e_mean_ns",
                 "p50_ns", "p95_ns", "p99_ns");
    for (const driver::OffloadPhaseBreakdown &row :
         m.offloadBreakdown) {
        std::fprintf(out, "  %-18s %8.0f", row.kernel.c_str(),
                     row.invocations);
        for (std::size_t p = 0; p < offload::kNumPhases; ++p) {
            const double share =
                row.e2eTicks > 0.0
                    ? 100.0 * row.phaseTicks[p] / row.e2eTicks
                    : 0.0;
            std::fprintf(out, " %12.2f", share);
        }
        const double mean_ns =
            row.invocations > 0.0
                ? row.e2eTicks / row.invocations / 1000.0
                : 0.0;
        std::fprintf(out, " %12.3f %10.3f %10.3f %10.3f\n", mean_ns,
                     row.p50 / 1000.0, row.p95 / 1000.0,
                     row.p99 / 1000.0);
    }
}

void
breakdownJson(sim::JsonWriter &w, const driver::Metrics &m)
{
    w.beginObject();
    w.key("workload").value(m.workload);
    w.key("config").value(m.config);
    w.key("kernels").beginArray();
    for (const driver::OffloadPhaseBreakdown &row :
         m.offloadBreakdown) {
        w.beginObject();
        w.key("kernel").value(row.kernel);
        w.key("invocations").value(row.invocations);
        w.key("phases").beginObject();
        for (std::size_t p = 0; p < offload::kNumPhases; ++p) {
            w.key(offload::phaseName(static_cast<offload::Phase>(p)))
                .value(row.phaseTicks[p]);
        }
        w.endObject();
        w.key("e2e_ticks").value(row.e2eTicks);
        w.key("p50_ticks").value(row.p50);
        w.key("p95_ticks").value(row.p95);
        w.key("p99_ticks").value(row.p99);
        w.key("min_ticks").value(row.minTicks);
        w.key("max_ticks").value(row.maxTicks);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "fdt";
    std::string config = "Dist-DA-F";
    driver::RunConfig cfg;
    driver::RunOptions opts;
    driver::SweepOptions sweep_opts;
    bool csv = false;
    driver::BreakdownMode breakdown = driver::BreakdownMode::Off;
    bool verify_only = false;
    std::string verify_json;
    bool analyze = false;
    bool analyze_json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            printList();
            return 0;
        } else if (arg.rfind("--workload=", 0) == 0) {
            workload = arg.substr(11);
        } else if (arg.rfind("--config=", 0) == 0) {
            config = arg.substr(9);
        } else if (arg.rfind("--scale=", 0) == 0) {
            opts.scale = driver::parseDouble(arg.substr(8), "--scale");
        } else if (arg == "--quick") {
            opts.scale = 0.25;
        } else if (arg == "--paper") {
            opts.scale = 2.0;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            sweep_opts.jobs = static_cast<int>(
                driver::parseInt(arg.substr(7), "--jobs"));
        } else if (arg.rfind("--ghz=", 0) == 0) {
            cfg.accelGHz = driver::parseDouble(arg.substr(6), "--ghz");
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--breakdown") {
            breakdown = driver::BreakdownMode::Text;
        } else if (arg.rfind("--breakdown=", 0) == 0) {
            breakdown = driver::parseBreakdownMode(arg.substr(12),
                                                   "--breakdown");
        } else if (arg == "--no-combining") {
            cfg.disableCombining = true;
        } else if (arg == "--no-retention") {
            cfg.disableRetention = true;
        } else if (arg.rfind("--buffer=", 0) == 0) {
            cfg.bufferBytesOverride = static_cast<std::uint32_t>(
                driver::parseInt(arg.substr(9), "--buffer"));
        } else if (arg.rfind("--channel=", 0) == 0) {
            cfg.channelCapacityOverride = static_cast<int>(
                driver::parseInt(arg.substr(10), "--channel"));
        } else if (arg == "--verify") {
            cfg.verifyPlans = compiler::VerifyMode::Error;
        } else if (arg.rfind("--verify=", 0) == 0) {
            cfg.verifyPlans = parseVerifyMode(arg.substr(9));
        } else if (arg == "--verify-only") {
            verify_only = true;
        } else if (arg.rfind("--verify-json=", 0) == 0) {
            verify_json = arg.substr(14);
            verify_only = true;
        } else if (arg == "--analyze") {
            analyze = true;
        } else if (arg == "--analyze=json") {
            analyze = true;
            analyze_json = true;
        } else if (arg.rfind("--timeline=", 0) == 0) {
            opts.obs.timelinePath = arg.substr(11);
        } else if (arg.rfind("--stats-json=", 0) == 0) {
            opts.obs.statsJsonPath = arg.substr(13);
        } else if (arg.rfind("--stats-interval=", 0) == 0) {
            opts.obs.statsIntervalTicks = static_cast<sim::Tick>(
                driver::parseInt(arg.substr(17), "--stats-interval"));
        } else if (arg.rfind("--report-dir=", 0) == 0) {
            sweep_opts.reportDir = arg.substr(13);
        } else if (arg.rfind("--plan-dir=", 0) == 0) {
            cfg.planDir = arg.substr(11);
        } else if (arg == "--plan-cache" || arg == "--plan-cache=on") {
            cfg.planCache = true;
        } else if (arg == "--plan-cache=off") {
            cfg.planCache = false;
        } else {
            fatal("unknown flag '%s'", arg.c_str());
        }
    }

    if (!cfg.planDir.empty() &&
        ::mkdir(cfg.planDir.c_str(), 0755) != 0 && errno != EEXIST)
        fatal("cannot create plan dir '%s'", cfg.planDir.c_str());

    // JSON breakdown owns stdout; the CSV table would interleave.
    if (breakdown == driver::BreakdownMode::Json && csv)
        fatal("--breakdown=json writes stdout; combine with --csv is "
              "ambiguous (use --breakdown for a stderr table)");

    setInformEnabled(false);
    std::vector<std::string> workload_names;
    if (workload == "all")
        workload_names = workloads::workloadNames();
    else
        workload_names.push_back(workload);

    std::vector<driver::ArchModel> models;
    if (config == "all")
        models = driver::headlineModels();
    else
        models.push_back(driver::parseArchModel(config));

    if (verify_only) {
        // Verification prints per-kernel diagnostics as it goes, so it
        // stays serial; it compiles without simulating and is fast.
        int errors = 0;
        std::vector<driver::KernelVerifyResult> collected;
        for (const std::string &w : workload_names) {
            for (driver::ArchModel m : models) {
                cfg.model = m;
                errors += driver::verifyWorkload(
                    w, cfg, opts,
                    verify_json.empty() ? nullptr : &collected);
            }
        }
        if (!verify_json.empty()) {
            sim::JsonWriter jw;
            jw.beginObject();
            jw.key("results").beginArray();
            for (const driver::KernelVerifyResult &r : collected) {
                jw.beginObject();
                jw.key("workload").value(r.workload);
                jw.key("config").value(r.config);
                jw.key("kernel").value(r.kernel);
                jw.key("partitions").value(
                    static_cast<std::uint64_t>(r.partitions));
                jw.key("channels").value(
                    static_cast<std::uint64_t>(r.channels));
                jw.key("errors").value(r.report.errorCount());
                jw.key("warnings").value(r.report.warningCount());
                jw.key("diagnostics").beginArray();
                for (const verify::Diag &d : r.report.diags()) {
                    jw.beginObject();
                    jw.key("severity").value(
                        d.severity == verify::Severity::Error
                            ? "error"
                            : "warning");
                    jw.key("pass").value(d.pass);
                    jw.key("location").value(d.location);
                    jw.key("message").value(d.message);
                    jw.endObject();
                }
                jw.endArray();
                jw.endObject();
            }
            jw.endArray();
            jw.endObject();
            if (!sim::writeTextFile(verify_json, jw.str()))
                return 2;
        }
        return errors ? 1 : 0;
    }

    if (analyze) {
        // Analysis executes each pair once (profiles need real
        // invocations) and prints facts serially in job order.
        int violations = 0;
        sim::JsonWriter jw;
        if (analyze_json) {
            jw.beginObject();
            jw.key("analysis").beginArray();
        }
        for (const std::string &w : workload_names) {
            for (driver::ArchModel m : models) {
                cfg.model = m;
                violations += driver::analyzeWorkload(
                    w, cfg, opts, analyze_json ? &jw : nullptr);
            }
        }
        if (analyze_json) {
            jw.endArray();
            jw.key("violations").value(violations);
            jw.endObject();
            std::printf("%s\n", jw.str().c_str());
        }
        return violations ? 1 : 0;
    }

    std::vector<driver::SweepJob> jobs;
    for (const std::string &w : workload_names) {
        for (driver::ArchModel m : models) {
            driver::SweepJob job;
            job.workload = w;
            job.config = cfg;
            job.config.model = m;
            job.options = opts;
            jobs.push_back(job);
        }
    }

    // Single-file observability outputs cannot serve a multi-run
    // sweep — the jobs would race on one path; --report-dir= fans the
    // reports out per job instead.
    if (jobs.size() > 1 && opts.obs.enabled()) {
        fatal("--timeline=/--stats-json= name single files; use "
              "--report-dir=<dir> for a %zu-job sweep", jobs.size());
    }

    // Progress/ETA on stderr for interactive multi-run sweeps; never
    // when redirected, so captured output is --jobs-invariant.
    sweep_opts.progress = jobs.size() > 1 && ::isatty(2) != 0;

    const auto results = driver::runSweep(jobs, sweep_opts);

    // Consolidated report in deterministic job order: one CSV header
    // then data rows, or the human-readable records. --breakdown=json
    // owns stdout (one parseable document, pipeable to json.tool), so
    // the human records ride stderr there.
    const bool human_to_stderr =
        breakdown == driver::BreakdownMode::Json;
    if (csv)
        std::printf("%s\n", driver::csvHeader().c_str());
    for (const auto &r : results) {
        if (!r.ok)
            continue;
        if (csv)
            std::printf("%s\n", driver::csvRow(r.metrics).c_str());
        else
            printHuman(human_to_stderr ? stderr : stdout, r.metrics);
    }
    if (breakdown == driver::BreakdownMode::Text) {
        // Under --csv the table rides stderr so machine-read stdout
        // (and the golden sweep CSV) stays byte-identical.
        std::FILE *out = csv ? stderr : stdout;
        for (const auto &r : results) {
            if (r.ok)
                printBreakdownText(out, r.metrics);
        }
    } else if (breakdown == driver::BreakdownMode::Json) {
        sim::JsonWriter jw;
        jw.beginObject();
        jw.key("breakdown").beginArray();
        for (const auto &r : results) {
            if (r.ok)
                breakdownJson(jw, r.metrics);
        }
        jw.endArray();
        jw.endObject();
        std::printf("%s\n", jw.str().c_str());
    }
    if (!driver::allOk(results))
        driver::dieOnFailures(results);
    return 0;
}
