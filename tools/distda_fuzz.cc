/**
 * @file
 * Differential fuzzer CLI: generate random kernels, run each through
 * every execution path, cross-check, and shrink failures to minimal
 * .repro files.
 *
 * Usage:
 *   distda_fuzz [--seed=<n>] [--runs=<k>] [--jobs=<n>]
 *               [--shape=parallel|pipeline|nonpart|multi|cross|mixed]
 *               [--out=<dir>] [--no-shrink] [--no-cgra] [--no-mono]
 *               [--no-analyze] [--no-replan] [--quiet]
 *   distda_fuzz --replay=<file.repro>
 *   distda_fuzz --corpus=<dir>
 *
 * Campaign mode (the default) derives one case per run from --seed,
 * runs the differential oracle and, on failure, minimizes the case and
 * (with --out=) writes it as <dir>/fuzz-seed<seed>-run<run>.repro.
 * Exit status is the number of failing runs (clamped to 125).
 *
 * --replay= re-runs one saved reproducer and prints the full report.
 * --corpus= replays every *.repro under a directory (sorted), the way
 * scripts/check.sh pins past counterexamples as regression tests.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/driver/config.hh"
#include "src/fuzz/campaign.hh"
#include "src/sim/logging.hh"

using namespace distda;

namespace
{

std::vector<std::string>
corpusFiles(const std::string &dir)
{
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".repro")
            files.push_back(entry.path().string());
    }
    if (ec)
        fatal("cannot read corpus directory '%s': %s", dir.c_str(),
              ec.message().c_str());
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace

int
main(int argc, char **argv)
{
    fuzz::CampaignOptions opts;
    opts.jobs = 0; // default below
    std::string replay;
    std::string corpus;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--seed=", 0) == 0) {
            opts.seed = static_cast<std::uint64_t>(
                driver::parseInt(arg.substr(7), "--seed"));
        } else if (arg.rfind("--runs=", 0) == 0) {
            opts.runs = static_cast<int>(
                driver::parseInt(arg.substr(7), "--runs"));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = static_cast<int>(
                driver::parseInt(arg.substr(7), "--jobs"));
        } else if (arg.rfind("--shape=", 0) == 0) {
            opts.gen.shape = fuzz::shapeFromName(arg.substr(8));
        } else if (arg.rfind("--out=", 0) == 0) {
            opts.outDir = arg.substr(6);
        } else if (arg == "--no-shrink") {
            opts.shrink = false;
        } else if (arg == "--no-cgra") {
            opts.diff.cgra = false;
        } else if (arg == "--no-mono") {
            opts.diff.mono = false;
        } else if (arg == "--no-analyze") {
            opts.diff.analyze = false;
        } else if (arg == "--no-replan") {
            opts.diff.planRoundTrip = false;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg.rfind("--replay=", 0) == 0) {
            replay = arg.substr(9);
        } else if (arg.rfind("--corpus=", 0) == 0) {
            corpus = arg.substr(9);
        } else {
            fatal("unknown flag '%s'", arg.c_str());
        }
    }

    setInformEnabled(false);
    // Random kernels trip verifier smells (dead registers) by design;
    // real findings surface as structured oracle output instead.
    setWarnEnabled(false);

    if (!replay.empty()) {
        const fuzz::FuzzCase c = fuzz::loadCase(replay);
        const fuzz::DiffOutcome outcome =
            fuzz::runDifferential(c, opts.diff);
        std::printf("%s: %s\n", replay.c_str(),
                    outcome.summary().c_str());
        return outcome.ok() ? 0 : 1;
    }

    if (!corpus.empty()) {
        const std::vector<std::string> files = corpusFiles(corpus);
        if (files.empty()) {
            std::printf("corpus '%s': no .repro files\n",
                        corpus.c_str());
            return 0;
        }
        const int failed =
            fuzz::replayCorpus(files, opts.diff, !quiet);
        std::printf("corpus '%s': %zu file(s), %d failure(s)\n",
                    corpus.c_str(), files.size(), failed);
        return failed ? 1 : 0;
    }

    if (opts.jobs <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        opts.jobs = hw ? static_cast<int>(hw) : 1;
    }
    opts.verbose = !quiet;
    if (!opts.outDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.outDir, ec);
        if (ec)
            fatal("cannot create out dir '%s': %s",
                  opts.outDir.c_str(), ec.message().c_str());
    }

    const fuzz::CampaignResult result = fuzz::runCampaign(opts);
    std::printf("fuzz: seed %llu, %d run(s), %d failure(s)\n",
                static_cast<unsigned long long>(opts.seed),
                result.runs, result.failures);
    for (const fuzz::CampaignFailure &f : result.details) {
        std::printf("-- run %d (case seed %llu)%s%s\n%s", f.run,
                    static_cast<unsigned long long>(f.caseSeed),
                    f.savedPath.empty() ? "" : " saved to ",
                    f.savedPath.c_str(), f.summary.c_str());
    }
    return std::min(result.failures, 125);
}
