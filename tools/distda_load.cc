/**
 * @file
 * Open-loop load generator for the offload service (distda_serve).
 *
 * Replays a mixed stream of offload requests against a running daemon
 * from several concurrent connections and reports client-observed
 * latency quantiles (streaming P² p50/p95/p99), throughput, error
 * counts and the aggregate plan-cache hit rate the daemon reported
 * per request. The request mix is the cross product of --workloads
 * and --configs, walked round-robin by request index so every
 * (workload, config) pair — and therefore every plan fingerprint —
 * appears with equal weight.
 *
 * Usage:
 *   distda_load --socket=<path> | --port=<n> [--host=<addr>]
 *               [--requests=<n>] [--connections=<n>] [--rate=<rps>]
 *               [--workloads=a,b,...] [--configs=x,y,...]
 *               [--scale=<f>] [--timeout-ms=<n>] [--probe]
 *               [--report-out=<file>] [--min-hit-rate=<f>]
 *               [--allow-errors] [--quiet]
 *
 * --rate > 0 runs open loop: request i is released at t0 + i/rate
 * globally across connections, whether or not earlier requests have
 * completed, so daemon-side queueing shows up as client latency
 * instead of being absorbed by the generator. --rate=0 (default) runs
 * closed loop at maximum throughput. --report-out writes the "report"
 * subtree of the first successful response verbatim, for
 * distda_stats diff against a direct distda_run --stats-json run.
 *
 * A connection that fails mid-run reconnects once; if that also fails
 * (daemon draining or gone) the connection retires and the remaining
 * requests are counted as errors. SIGPIPE is ignored and SIGINT stops
 * new requests, letting in-flight ones finish before the summary — so
 * the generator always reports what it measured, even under an
 * interrupted or draining daemon. Exit is nonzero on any error or a
 * missed --min-hit-rate unless --allow-errors is given.
 *
 * Example (the check.sh smoke stage):
 *   distda_load --socket=/tmp/distda.sock --requests=1000 \
 *     --connections=8 --workloads=fdt,bfs \
 *     --configs=Dist-DA-IO,Dist-DA-F --scale=0.25 --min-hit-rate=0.9
 */

#include <csignal>
#include <cstdio>
#include <string>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "src/driver/config.hh"
#include "src/serve/client.hh"
#include "src/serve/protocol.hh"
#include "src/sim/json.hh"
#include "src/sim/logging.hh"
#include "src/sim/stats.hh"

using namespace distda;

namespace
{

std::atomic<bool> g_interrupted{false};

void
onInterrupt(int)
{
    g_interrupted.store(true, std::memory_order_relaxed);
}

struct LoadOptions
{
    std::string socketPath;
    std::string host;
    int port = -1;
    std::uint64_t requests = 1000;
    int connections = 4;
    double rate = 0.0; ///< total req/s across connections; 0 = closed loop
    std::vector<std::string> workloads{"fdt"};
    std::vector<std::string> configs{"Dist-DA-IO"};
    double scale = 0.25;
    int timeoutMs = 30'000;
    bool probe = false;
    std::string reportOut;
    double minHitRate = -1.0;
    bool allowErrors = false;
    bool quiet = false;
};

/** Aggregated results; quantiles guarded by the mutex. */
struct LoadResults
{
    std::mutex mu;
    stats::P2Quantile p50{0.5};
    stats::P2Quantile p95{0.95};
    stats::P2Quantile p99{0.99};
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::string firstReport; ///< "report" subtree of first ok reply
    std::string firstError;
};

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        if (end > start)
            out.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

bool
connectClient(serve::ServeClient &client, const LoadOptions &opts,
              std::string &err)
{
    if (!opts.socketPath.empty())
        return client.connectUnix(opts.socketPath, err);
    return client.connectTcp(opts.host, opts.port, err);
}

/** Record one response line; returns false on a non-ok reply. */
bool
recordResponse(const std::string &response, double latency_ms,
               LoadResults &results, std::string &err)
{
    sim::JsonValue doc;
    if (!sim::tryParseJson(response, doc, err))
        return false;
    const sim::JsonValue *ok = doc.find("ok");
    if (!ok || ok->kind != sim::JsonValue::Kind::Bool) {
        err = "response missing 'ok'";
        return false;
    }
    if (!ok->b) {
        const sim::JsonValue *msg = doc.find("error");
        err = msg && msg->isString() ? msg->str : "server error";
        return false;
    }

    std::uint64_t hits = 0, misses = 0;
    if (const sim::JsonValue *service = doc.find("service")) {
        if (const sim::JsonValue *h = service->find("plan_cache_hits"))
            hits = static_cast<std::uint64_t>(h->num);
        if (const sim::JsonValue *m = service->find("plan_cache_misses"))
            misses = static_cast<std::uint64_t>(m->num);
    }

    std::lock_guard<std::mutex> lock(results.mu);
    results.ok++;
    results.hits += hits;
    results.misses += misses;
    results.p50.add(latency_ms);
    results.p95.add(latency_ms);
    results.p99.add(latency_ms);
    if (results.firstReport.empty()) {
        if (const sim::JsonValue *report = doc.find("report")) {
            if (report->isObject()) {
                sim::JsonWriter w;
                sim::dumpJsonValue(*report, w);
                results.firstReport = w.str();
            }
        }
    }
    return true;
}

void
recordError(LoadResults &results, const std::string &err,
            std::uint64_t count = 1)
{
    std::lock_guard<std::mutex> lock(results.mu);
    results.errors += count;
    if (results.firstError.empty())
        results.firstError = err;
}

/**
 * One connection's request loop. Pulls global request indices from
 * @p next so the open-loop schedule and the workload/config mix are
 * shared across connections.
 */
void
connectionLoop(const LoadOptions &opts,
               const std::vector<serve::ServeRequest> &mix,
               std::chrono::steady_clock::time_point t0,
               std::atomic<std::uint64_t> &next, LoadResults &results)
{
    using Clock = std::chrono::steady_clock;
    serve::ServeClient client;
    std::string err;
    if (!connectClient(client, opts, err)) {
        // Count the requests this connection would have carried.
        std::uint64_t missed = 0;
        while (next.fetch_add(1) < opts.requests)
            missed++;
        recordError(results, err, missed);
        return;
    }

    bool reconnected = false;
    while (!g_interrupted.load(std::memory_order_relaxed)) {
        const std::uint64_t i = next.fetch_add(1);
        if (i >= opts.requests)
            break;

        if (opts.rate > 0.0) {
            const auto release =
                t0 + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             static_cast<double>(i) / opts.rate));
            std::this_thread::sleep_until(release);
        }

        serve::ServeRequest req = mix[i % mix.size()];
        req.id = i;
        const std::string line = serve::buildRequestLine(req);

        const auto start = Clock::now();
        std::string response;
        bool sent = client.request(line, response, err, opts.timeoutMs);
        if (!sent && !reconnected) {
            // One reconnect per connection: a daemon restart is
            // survivable, a draining or dead daemon retires us.
            reconnected = true;
            if (connectClient(client, opts, err))
                sent = client.request(line, response, err,
                                      opts.timeoutMs);
        }
        if (!sent) {
            // Reconnect budget spent: retire this connection and
            // leave the remaining request indices to its peers
            // instead of burning through them as instant errors.
            recordError(results, err);
            break;
        }
        const double latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      start)
                .count();
        if (!recordResponse(response, latency_ms, results, err))
            recordError(results, err);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    LoadOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--socket=", 0) == 0) {
            opts.socketPath = arg.substr(9);
        } else if (arg.rfind("--host=", 0) == 0) {
            opts.host = arg.substr(7);
        } else if (arg.rfind("--port=", 0) == 0) {
            opts.port = static_cast<int>(
                driver::parseInt(arg.substr(7), "--port"));
        } else if (arg.rfind("--requests=", 0) == 0) {
            opts.requests = static_cast<std::uint64_t>(
                driver::parseInt(arg.substr(11), "--requests"));
        } else if (arg.rfind("--connections=", 0) == 0) {
            opts.connections = static_cast<int>(
                driver::parseInt(arg.substr(14), "--connections"));
        } else if (arg.rfind("--rate=", 0) == 0) {
            opts.rate = driver::parseDouble(arg.substr(7), "--rate");
        } else if (arg.rfind("--workloads=", 0) == 0) {
            opts.workloads = splitList(arg.substr(12));
        } else if (arg.rfind("--configs=", 0) == 0) {
            opts.configs = splitList(arg.substr(10));
        } else if (arg.rfind("--scale=", 0) == 0) {
            opts.scale = driver::parseDouble(arg.substr(8), "--scale");
        } else if (arg.rfind("--timeout-ms=", 0) == 0) {
            opts.timeoutMs = static_cast<int>(
                driver::parseInt(arg.substr(13), "--timeout-ms"));
        } else if (arg == "--probe") {
            opts.probe = true;
        } else if (arg.rfind("--report-out=", 0) == 0) {
            opts.reportOut = arg.substr(13);
        } else if (arg.rfind("--min-hit-rate=", 0) == 0) {
            opts.minHitRate =
                driver::parseDouble(arg.substr(15), "--min-hit-rate");
        } else if (arg == "--allow-errors") {
            opts.allowErrors = true;
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else {
            fatal("unknown flag '%s'", arg.c_str());
        }
    }
    if (opts.socketPath.empty() && opts.port < 0)
        fatal("need a target: --socket=<path> or --port=<n>");
    if (opts.workloads.empty() || opts.configs.empty())
        fatal("--workloads and --configs must be non-empty");
    if (opts.connections < 1)
        fatal("--connections must be >= 1");

    // Build the request mix once: cross product, validated up front so
    // a typo'd model name dies here, not as N server-side errors.
    std::vector<serve::ServeRequest> mix;
    for (const std::string &wl : opts.workloads) {
        for (const std::string &cfg : opts.configs) {
            serve::ServeRequest req;
            req.workload = wl;
            req.config.model = driver::parseArchModel(cfg);
            req.scale = opts.scale;
            req.probe = opts.probe;
            mix.push_back(req);
        }
    }

    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGINT, onInterrupt);
    std::signal(SIGTERM, onInterrupt);

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    LoadResults results;
    std::atomic<std::uint64_t> next{0};
    std::vector<std::thread> threads;
    const int conns = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(opts.connections),
        std::max<std::uint64_t>(opts.requests, 1)));
    threads.reserve(static_cast<std::size_t>(conns));
    for (int i = 0; i < conns; ++i) {
        threads.emplace_back(connectionLoop, std::cref(opts),
                             std::cref(mix), t0, std::ref(next),
                             std::ref(results));
    }
    for (std::thread &t : threads)
        t.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();

    const std::uint64_t done = results.ok + results.errors;
    const std::uint64_t lookups = results.hits + results.misses;
    const double hit_rate =
        lookups > 0
            ? static_cast<double>(results.hits) /
                  static_cast<double>(lookups)
            : 0.0;
    const bool interrupted =
        g_interrupted.load(std::memory_order_relaxed);

    if (!opts.quiet && !results.firstError.empty()) {
        std::fprintf(stderr, "distda_load: first error: %s\n",
                     results.firstError.c_str());
    }
    std::printf("requests=%llu ok=%llu errors=%llu interrupted=%d\n",
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(results.ok),
                static_cast<unsigned long long>(results.errors),
                interrupted ? 1 : 0);
    std::printf("p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f\n",
                results.p50.value(), results.p95.value(),
                results.p99.value());
    std::printf("wall_s=%.3f throughput_rps=%.1f\n", wall_s,
                wall_s > 0.0 ? static_cast<double>(results.ok) / wall_s
                             : 0.0);
    std::printf("plan_cache_hits=%llu plan_cache_misses=%llu "
                "hit_rate=%.4f\n",
                static_cast<unsigned long long>(results.hits),
                static_cast<unsigned long long>(results.misses),
                hit_rate);

    if (!opts.reportOut.empty()) {
        if (results.firstReport.empty()) {
            std::fprintf(stderr,
                         "distda_load: no report captured for %s\n",
                         opts.reportOut.c_str());
            return 1;
        }
        std::FILE *f = std::fopen(opts.reportOut.c_str(), "w");
        if (!f)
            fatal("cannot write '%s'", opts.reportOut.c_str());
        std::fputs(results.firstReport.c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
    }

    if (results.errors > 0 && !opts.allowErrors)
        return 1;
    if (opts.minHitRate >= 0.0 && !interrupted &&
        hit_rate < opts.minHitRate) {
        std::fprintf(stderr,
                     "distda_load: hit rate %.4f below required %.4f\n",
                     hit_rate, opts.minHitRate);
        return 1;
    }
    return 0;
}
